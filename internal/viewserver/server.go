package viewserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sand/internal/metrics"
	"sand/internal/obs"
	"sand/internal/vfs"
)

// DefaultReadAhead is the recommended fixed prefetch depth — the value
// most callers want when they are not using AdaptiveReadAhead.
const DefaultReadAhead = 2

// Defaults for the adaptive read-ahead controller.
const (
	// DefaultReadAheadMax bounds how deep the adaptive controller grows.
	DefaultReadAheadMax = 8
	// DefaultReadAheadBudget bounds payload bytes held by unclaimed
	// prefetch entries (pinned when the mount pins) before the
	// controller stops issuing prefetches — the brake for stalled
	// clients.
	DefaultReadAheadBudget = 32 << 20
)

// Options tunes a Server.
type Options struct {
	// ReadAhead is how many subsequent batch views the server prefetches
	// when a client opens /{task}/{epoch}/{iter}/view — the dataplane
	// analogue of sequential read-ahead. The zero value disables
	// prefetching; pass DefaultReadAhead for the recommended fixed
	// depth. With AdaptiveReadAhead set this is only the starting depth
	// (forced to at least 1).
	ReadAhead int
	// AdaptiveReadAhead replaces the fixed depth with a per-session
	// controller: each session's depth tracks the ratio of observed
	// server materialization latency to the client's open interval
	// (Little's-law pipelining — a client consuming faster than the
	// server materializes needs proportionally more views in flight),
	// stepping by one per open within [1, ReadAheadMax]. When unclaimed
	// prefetched bytes exceed ReadAheadBudget the controller stops
	// issuing prefetches until the backlog drains, so slow or stalled
	// clients cannot pin the store's budget. See DESIGN.md §11.
	AdaptiveReadAhead bool
	// ReadAheadMax bounds the adaptive controller's depth. 0 uses
	// DefaultReadAheadMax.
	ReadAheadMax int
	// ReadAheadBudget is the unclaimed-prefetch byte brake for the
	// adaptive controller. 0 uses DefaultReadAheadBudget.
	ReadAheadBudget int64
	// MaxInflight bounds concurrently executing requests per session.
	// When a client pipelines past the limit the server stops reading its
	// socket, so backpressure propagates through TCP instead of growing
	// an unbounded buffer. 0 uses the default.
	MaxInflight int
	// MaxMessage bounds a single wire frame in bytes. Oversized frames
	// are answered with a protocol error and the connection is closed.
	// 0 uses DefaultMaxMessage.
	MaxMessage int
	// ForceCopy disables the zero-copy send path: pinned payloads are
	// copied into the pooled response buffer like any other. The
	// benchmark baseline knob; the wire bytes are identical either way.
	ForceCopy bool
	// Obs receives the server's request spans, latency histogram and
	// counters. Nil means no registration.
	Obs *obs.Registry
}

func (o *Options) normalize() {
	if o.ReadAhead < 0 {
		o.ReadAhead = 0
	}
	if o.AdaptiveReadAhead {
		if o.ReadAhead == 0 {
			o.ReadAhead = 1 // the controller needs a starting depth
		}
		if o.ReadAheadMax <= 0 {
			o.ReadAheadMax = DefaultReadAheadMax
		}
		if o.ReadAheadMax < o.ReadAhead {
			o.ReadAheadMax = o.ReadAhead
		}
		if o.ReadAheadBudget <= 0 {
			o.ReadAheadBudget = DefaultReadAheadBudget
		}
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 32
	}
	if o.MaxMessage <= 0 {
		o.MaxMessage = DefaultMaxMessage
	}
}

// Stats is a snapshot of server counters.
type Stats struct {
	// Requests counts completed requests by op name.
	Requests map[string]int64
	// BytesServed is payload bytes sent on read paths.
	BytesServed int64
	// OpenSessions is the number of live connections.
	OpenSessions int
	// OpenFDs is the number of live descriptors across all sessions.
	OpenFDs int
	// ReadaheadHits / ReadaheadMisses count batch-view opens served from
	// (or missing) the prefetch cache.
	ReadaheadHits   int64
	ReadaheadMisses int64
	// ReadaheadBytes is payload bytes currently held by unclaimed
	// prefetch entries (the adaptive controller's brake input).
	ReadaheadBytes int64
	// ReadaheadGrows / ReadaheadShrinks / ReadaheadBrakes count adaptive
	// controller decisions: depth steps up, depth steps down, and opens
	// where prefetching was suppressed because unclaimed bytes exceeded
	// ReadAheadBudget.
	ReadaheadGrows   int64
	ReadaheadShrinks int64
	ReadaheadBrakes  int64
	// ZeroCopyHits counts read responses served by reference: a pooled
	// header plus the pinned cache-resident payload, written with one
	// writev. CopyFallbacks counts non-empty read responses that were
	// copied through the response buffer instead (payload not
	// cache-resident, or Options.ForceCopy).
	ZeroCopyHits  int64
	CopyFallbacks int64
}

// ReadaheadHitRate returns hits / (hits + misses), 0 when idle.
func (s Stats) ReadaheadHitRate() float64 {
	total := s.ReadaheadHits + s.ReadaheadMisses
	if total == 0 {
		return 0
	}
	return float64(s.ReadaheadHits) / float64(total)
}

// Counter names used in the metrics.CounterSet.
const (
	ctrBytesServed = "bytes.served"
	ctrRAHit       = "readahead.hit"
	ctrRAMiss      = "readahead.miss"
	ctrRAGrow      = "readahead.grow"
	ctrRAShrink    = "readahead.shrink"
	ctrRABrake     = "readahead.brake"
	ctrZCHit       = "dataplane.zerocopy.hit"
	ctrZCFallback  = "dataplane.copy.fallback"
)

// Server exports a vfs.Mount over length-prefixed frames. One goroutine
// reads each connection; requests dispatch to bounded per-session worker
// goroutines so slow materializations don't serialize a session's
// independent reads.
type Server struct {
	mount vfs.Mount
	opts  Options
	ctr   *metrics.CounterSet

	tr      *obs.Tracer
	histReq *obs.Histogram // per-request service time (ns)
	wireCtr *obs.Counter   // payload bytes sent on read paths

	mu        sync.Mutex
	listeners []net.Listener
	sessions  map[*session]struct{}
	openFDs   int
	closed    bool

	ramu    sync.Mutex
	ra      map[string]*raEntry
	raOrder []string

	// matNS holds the float64 bits of an EWMA over observed view
	// materialization latency (ns) — the adaptive controller's estimate
	// of how long the server takes to produce one view.
	matNS atomic.Uint64
	// raBytes is payload bytes held by unclaimed prefetch entries.
	raBytes atomic.Int64

	wg   sync.WaitGroup // accept loops + sessions
	rawg sync.WaitGroup // read-ahead materializations
}

// raEntry is one prefetched view. done closes when materialization
// finishes (successfully or not). A successful entry holds its view —
// pinned, when the mount pins — until it is taken by an open or evicted.
type raEntry struct {
	done chan struct{}
	view *vfs.View
	err  error
}

// raCap bounds the prefetch cache (entries, not bytes): stale entries
// from abandoned sequences are evicted FIFO.
const raCap = 64

// New creates a server exporting the mount. Call Listen (or Serve) to
// start accepting connections.
func New(m vfs.Mount, opts Options) *Server {
	if m == nil {
		panic("viewserver: nil mount")
	}
	opts.normalize()
	s := &Server{
		mount:    m,
		opts:     opts,
		ctr:      metrics.NewCounterSet(),
		sessions: map[*session]struct{}{},
		ra:       map[string]*raEntry{},
		tr:       opts.Obs.Trace(),
		histReq:  opts.Obs.Histogram("viewserver.request_ns"),
		wireCtr:  opts.Obs.Counter("viewserver.wire_bytes"),
	}
	if r := opts.Obs; r != nil {
		r.Gauge("viewserver.sessions", func() float64 { return float64(s.Stats().OpenSessions) })
		r.Gauge("viewserver.fds", func() float64 { return float64(s.Stats().OpenFDs) })
		r.Gauge("viewserver.ra_depth", func() float64 {
			depths := s.ReadaheadDepths()
			if len(depths) == 0 {
				return 0
			}
			return float64(depths[len(depths)-1]) // max: depths are sorted
		})
		r.Gauge("viewserver.ra_pinned_bytes", func() float64 { return float64(s.raBytes.Load()) })
		r.SnapshotFunc("viewserver", func() map[string]int64 { return s.ctr.Snapshot() })
	}
	return s
}

// Listen starts accepting connections on network ("tcp" or "unix") and
// address, returning the bound address (useful with ":0").
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, ErrClosed
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr(), nil
}

// Serve runs the accept loop on an existing listener, blocking until the
// listener closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	s.acceptLoop(ln)
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops listeners, drops every session, reclaims their fds and
// waits for in-flight work.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	conns := make([]net.Conn, 0, len(s.sessions))
	for sess := range s.sessions {
		conns = append(conns, sess.conn)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	s.rawg.Wait()
	// Drop any prefetched views still pinned in the read-ahead cache.
	s.ramu.Lock()
	for _, e := range s.ra {
		e.view.Release()
	}
	s.ra = map[string]*raEntry{}
	s.raOrder = nil
	s.ramu.Unlock()
	s.raBytes.Store(0)
	return nil
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	snap := s.ctr.Snapshot()
	st := Stats{
		Requests:         map[string]int64{},
		BytesServed:      snap[ctrBytesServed],
		ReadaheadHits:    snap[ctrRAHit],
		ReadaheadMisses:  snap[ctrRAMiss],
		ReadaheadBytes:   s.raBytes.Load(),
		ReadaheadGrows:   snap[ctrRAGrow],
		ReadaheadShrinks: snap[ctrRAShrink],
		ReadaheadBrakes:  snap[ctrRABrake],
		ZeroCopyHits:     snap[ctrZCHit],
		CopyFallbacks:    snap[ctrZCFallback],
	}
	for k, v := range snap {
		if name, ok := strings.CutPrefix(k, "op."); ok {
			st.Requests[name] = v
		}
	}
	s.mu.Lock()
	st.OpenSessions = len(s.sessions)
	st.OpenFDs = s.openFDs
	s.mu.Unlock()
	return st
}

// Counters exposes the raw counter set (shared with the live server; use
// Snapshot for a consistent view).
func (s *Server) Counters() *metrics.CounterSet { return s.ctr }

// StatsTable renders the counters plus gauges for reporting.
func (s *Server) StatsTable() *metrics.Table {
	st := s.Stats()
	t := metrics.NewTable("viewserver", "counter", "value")
	ops := make([]string, 0, len(st.Requests))
	for op := range st.Requests {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		t.AddRow("op."+op, st.Requests[op])
	}
	t.AddRow("bytes.served", st.BytesServed)
	t.AddRow("sessions.open", st.OpenSessions)
	t.AddRow("fds.open", st.OpenFDs)
	t.AddRow("readahead.hit", st.ReadaheadHits)
	t.AddRow("readahead.miss", st.ReadaheadMisses)
	t.AddRow("readahead.hitrate", metrics.Pct(st.ReadaheadHitRate()))
	t.AddRow("readahead.bytes", st.ReadaheadBytes)
	t.AddRow("readahead.grow", st.ReadaheadGrows)
	t.AddRow("readahead.shrink", st.ReadaheadShrinks)
	t.AddRow("readahead.brake", st.ReadaheadBrakes)
	t.AddRow("dataplane.zerocopy.hit", st.ZeroCopyHits)
	t.AddRow("dataplane.copy.fallback", st.CopyFallbacks)
	return t
}

// session is one connection's state: a private fd namespace reclaimed on
// disconnect.
type session struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex // serializes response frames

	mu     sync.Mutex
	nextFD uint32
	fds    map[uint32]*handle
	closed bool

	// Adaptive read-ahead controller state (see adaptDepth).
	raMu       sync.Mutex
	raDepth    int
	raLastOpen time.Time
	raInterval float64 // EWMA of ns between batch-view opens
}

// handle is an open view: the fully materialized payload plus metadata,
// held as a (possibly pinned) reference. The server holds no underlying
// vfs descriptors across requests, so a dying session can never leak
// engine state; the view's pin is released when the descriptor closes
// or the session dies. view is set once at creation and never
// reassigned, and releasing a pin never invalidates the bytes (the GC
// owns them), so an in-flight read racing a close stays correct.
type handle struct {
	mu   sync.Mutex
	view *vfs.View
	off  int
}

func (s *Server) serveConn(conn net.Conn) {
	sess := &session{srv: s, conn: conn, nextFD: 3, fds: map[uint32]*handle{}, raDepth: s.opts.ReadAhead}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()

	sem := make(chan struct{}, s.opts.MaxInflight)
	var handlers sync.WaitGroup
	for {
		body, err := readFrame(conn, s.opts.MaxMessage)
		if err != nil {
			if errors.Is(err, ErrTooLarge) {
				// Clean protocol error: tell the client why before
				// dropping the now-unframeable connection.
				sess.sendError(0, ErrTooLarge, err.Error())
			}
			break
		}
		req, derr := decodeRequest(body)
		if derr != nil {
			sess.sendError(req.id, ErrProtocol, derr.Error())
			break
		}
		sem <- struct{}{} // backpressure: stop reading when the session is saturated
		handlers.Add(1)
		go func(req request) {
			defer handlers.Done()
			defer func() { <-sem }()
			s.handle(sess, req)
		}(req)
	}
	handlers.Wait()
	conn.Close()

	// Reclaim the session and its descriptors, dropping their pins.
	sess.mu.Lock()
	sess.closed = true
	fds := sess.fds
	sess.fds = nil
	sess.mu.Unlock()
	for _, h := range fds {
		h.view.Release()
	}
	s.mu.Lock()
	delete(s.sessions, sess)
	s.openFDs -= len(fds)
	s.mu.Unlock()
}

func (s *Server) handle(sess *session, req request) {
	if s.histReq != nil {
		reqStart := time.Now()
		defer func() { s.histReq.Observe(time.Since(reqStart).Nanoseconds()) }()
	}
	if s.tr.Enabled() {
		spanStart := s.tr.Now()
		defer func() { s.tr.Span("viewserver", "req."+req.op.String(), 0, spanStart, req.path) }()
	}
	s.ctr.Add("op."+req.op.String(), 1)
	switch req.op {
	case OpPing:
		sess.send(req.id, StatusOK, nil)
	case OpOpen:
		s.handleOpen(sess, req)
	case OpRead:
		s.handleRead(sess, req)
	case OpReadAt:
		s.handleReadAt(sess, req)
	case OpGetxattr:
		h, ok := sess.lookup(req.fd)
		if !ok {
			sess.sendError(req.id, vfs.ErrBadFD, fmt.Sprintf("fd %d", req.fd))
			return
		}
		v, ok := h.view.Xattrs[req.name]
		if !ok {
			sess.sendError(req.id, vfs.ErrNoXattr, req.name)
			return
		}
		sess.send(req.id, StatusOK, func(b []byte) []byte { return appendString(b, v) })
	case OpListxattr:
		h, ok := sess.lookup(req.fd)
		if !ok {
			sess.sendError(req.id, vfs.ErrBadFD, fmt.Sprintf("fd %d", req.fd))
			return
		}
		names := make([]string, 0, len(h.view.Xattrs))
		for k := range h.view.Xattrs {
			names = append(names, k)
		}
		sort.Strings(names)
		sess.sendStrings(req.id, names)
	case OpSize:
		h, ok := sess.lookup(req.fd)
		if !ok {
			sess.sendError(req.id, vfs.ErrBadFD, fmt.Sprintf("fd %d", req.fd))
			return
		}
		sess.send(req.id, StatusOK, func(b []byte) []byte {
			return appendU64(b, uint64(len(h.view.Data)))
		})
	case OpReaddir:
		names, err := s.mount.Readdir(req.path)
		if err != nil {
			sess.sendError(req.id, err, err.Error())
			return
		}
		sess.sendStrings(req.id, names)
	case OpClose:
		sess.mu.Lock()
		h, ok := sess.fds[req.fd]
		if ok {
			delete(sess.fds, req.fd)
		}
		sess.mu.Unlock()
		if !ok {
			sess.sendError(req.id, vfs.ErrBadFD, fmt.Sprintf("fd %d", req.fd))
			return
		}
		h.view.Release()
		s.mu.Lock()
		s.openFDs--
		s.mu.Unlock()
		sess.send(req.id, StatusOK, nil)
	case OpStats:
		st := s.Stats()
		kv := map[string]int64{
			"bytes.served":            st.BytesServed,
			"sessions.open":           int64(st.OpenSessions),
			"fds.open":                int64(st.OpenFDs),
			"readahead.hit":           st.ReadaheadHits,
			"readahead.miss":          st.ReadaheadMisses,
			"dataplane.zerocopy.hit":  st.ZeroCopyHits,
			"dataplane.copy.fallback": st.CopyFallbacks,
		}
		for op, n := range st.Requests {
			kv["op."+op] = n
		}
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sess.send(req.id, StatusOK, func(b []byte) []byte {
			b = appendU32(b, uint32(len(keys)))
			for _, k := range keys {
				b = appendString(b, k)
				b = appendU64(b, uint64(kv[k]))
			}
			return b
		})
	}
}

func (s *Server) handleOpen(sess *session, req request) {
	v, err := s.materialize(sess, req.path)
	if err != nil {
		sess.sendError(req.id, err, err.Error())
		return
	}
	h := &handle{view: v}
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		v.Release()
		return
	}
	fd := sess.nextFD
	sess.nextFD++
	sess.fds[fd] = h
	sess.mu.Unlock()
	s.mu.Lock()
	s.openFDs++
	s.mu.Unlock()
	sess.send(req.id, StatusOK, func(b []byte) []byte {
		b = appendU32(b, fd)
		return appendU64(b, uint64(len(v.Data)))
	})
}

// maxReadChunk keeps a read response within the frame limit.
func (s *Server) maxReadChunk() int { return s.opts.MaxMessage - 64 }

func (s *Server) handleRead(sess *session, req request) {
	h, ok := sess.lookup(req.fd)
	if !ok {
		sess.sendError(req.id, vfs.ErrBadFD, fmt.Sprintf("fd %d", req.fd))
		return
	}
	n := int(req.n)
	if n > s.maxReadChunk() {
		n = s.maxReadChunk()
	}
	h.mu.Lock()
	data := h.view.Data
	if h.off >= len(data) {
		h.mu.Unlock()
		sess.send(req.id, StatusEOF, func(b []byte) []byte { return appendBlob(b, nil) })
		return
	}
	if rem := len(data) - h.off; n > rem {
		n = rem
	}
	chunk := data[h.off : h.off+n]
	h.off += n
	h.mu.Unlock()
	s.ctr.Add(ctrBytesServed, int64(n))
	s.wireCtr.Add(int64(n))
	sess.sendPayload(req.id, StatusOK, chunk, h.view.Pinned)
}

func (s *Server) handleReadAt(sess *session, req request) {
	h, ok := sess.lookup(req.fd)
	if !ok {
		sess.sendError(req.id, vfs.ErrBadFD, fmt.Sprintf("fd %d", req.fd))
		return
	}
	want := int(req.n)
	if want > s.maxReadChunk() {
		want = s.maxReadChunk()
	}
	data := h.view.Data
	off := int64(req.off)
	if off < 0 || off >= int64(len(data)) {
		sess.send(req.id, StatusEOF, func(b []byte) []byte { return appendBlob(b, nil) })
		return
	}
	n := want
	if rem := len(data) - int(off); n > rem {
		n = rem
	}
	chunk := data[off : int(off)+n]
	s.ctr.Add(ctrBytesServed, int64(n))
	s.wireCtr.Add(int64(n))
	status := StatusOK
	if n < int(req.n) {
		status = StatusEOF // pread short of the request: data + EOF, like vfs.ReadAt
	}
	sess.sendPayload(req.id, status, chunk, h.view.Pinned)
}

func (sess *session) lookup(fd uint32) (*handle, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	h, ok := sess.fds[fd]
	return h, ok
}

// --- materialization + read-ahead ---

// materialize resolves a path to its view, serving batch views from the
// prefetch cache when the sequential read-ahead got there first (the
// entry's pin transfers to the caller), and scheduling the next views
// of the sequence either way. The session drives the adaptive depth
// controller; it may be nil (prefetch depth then falls back to the
// configured starting depth).
func (s *Server) materialize(sess *session, path string) (*vfs.View, error) {
	parsed, perr := vfs.ParsePath(path)
	if perr != nil || parsed.Kind != vfs.KindBatchView || s.opts.ReadAhead == 0 {
		return s.load(path)
	}
	depth := s.opts.ReadAhead
	if s.opts.AdaptiveReadAhead && sess != nil {
		depth = sess.adaptDepth(s)
	}
	if e := s.raTake(path); e != nil {
		<-e.done
		if e.err == nil {
			s.raBytes.Add(-int64(len(e.view.Data)))
			s.ctr.Add(ctrRAHit, 1)
			s.scheduleReadahead(parsed, depth)
			return e.view, nil
		}
		// A failed prefetch is not a hit; fall through to a live load.
	}
	s.ctr.Add(ctrRAMiss, 1)
	v, err := s.timedLoad(path)
	if err == nil {
		s.scheduleReadahead(parsed, depth)
	}
	return v, err
}

// raAlpha smooths the materialization-latency and open-interval EWMAs.
const raAlpha = 0.3

// adaptDepth runs one step of the session's read-ahead controller and
// returns the prefetch depth for this open. The target depth is the
// ratio of server materialization latency to the client's open interval
// plus one — enough views in flight to hide materialization behind the
// client's own consumption — clamped to [1, ReadAheadMax]; the live
// depth steps toward it by at most one per open so a single slow open
// doesn't collapse the pipeline. When unclaimed prefetched bytes exceed
// ReadAheadBudget the controller returns 0 (no new prefetches) and
// shrinks, so a stalled client drains its backlog instead of growing it.
func (sess *session) adaptDepth(s *Server) int {
	sess.raMu.Lock()
	defer sess.raMu.Unlock()
	now := time.Now()
	if !sess.raLastOpen.IsZero() {
		iv := float64(now.Sub(sess.raLastOpen).Nanoseconds())
		if sess.raInterval == 0 {
			sess.raInterval = iv
		} else {
			sess.raInterval += raAlpha * (iv - sess.raInterval)
		}
	}
	sess.raLastOpen = now

	if s.raBytes.Load() > s.opts.ReadAheadBudget {
		if sess.raDepth > 1 {
			sess.raDepth--
			s.ctr.Add(ctrRAShrink, 1)
		}
		s.ctr.Add(ctrRABrake, 1)
		return 0
	}

	target := sess.raDepth
	if mat := s.matLatencyNS(); mat > 0 && sess.raInterval > 0 {
		// Round the ratio: at depth 1 a saturated pipeline measures an
		// interval of materialization latency plus RTT, so truncation
		// would read the ratio as "just under 1" and never grow.
		target = int(mat/sess.raInterval+0.5) + 1
	}
	if target < 1 {
		target = 1
	}
	if target > s.opts.ReadAheadMax {
		target = s.opts.ReadAheadMax
	}
	switch {
	case target > sess.raDepth:
		sess.raDepth++
		s.ctr.Add(ctrRAGrow, 1)
	case target < sess.raDepth:
		sess.raDepth--
		s.ctr.Add(ctrRAShrink, 1)
	}
	if sess.raDepth < 1 {
		sess.raDepth = 1
	}
	return sess.raDepth
}

// matLatencyNS returns the EWMA of observed materialization latency.
func (s *Server) matLatencyNS() float64 {
	bits := s.matNS.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// noteMatLatency folds one observed materialization time into the EWMA.
func (s *Server) noteMatLatency(ns int64) {
	for {
		old := s.matNS.Load()
		var next float64
		if old == 0 {
			next = float64(ns)
		} else {
			prev := math.Float64frombits(old)
			next = prev + raAlpha*(float64(ns)-prev)
		}
		if s.matNS.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// timedLoad is load plus a materialization-latency observation for the
// adaptive controller.
func (s *Server) timedLoad(path string) (*vfs.View, error) {
	start := time.Now()
	v, err := s.load(path)
	if err == nil {
		s.noteMatLatency(time.Since(start).Nanoseconds())
	}
	return v, err
}

// ReadaheadDepths returns the current adaptive depth of every live
// session, sorted ascending. With a fixed depth (no AdaptiveReadAhead)
// every entry is Options.ReadAhead.
func (s *Server) ReadaheadDepths() []int {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	out := make([]int, 0, len(sessions))
	for _, sess := range sessions {
		sess.raMu.Lock()
		out = append(out, sess.raDepth)
		sess.raMu.Unlock()
	}
	sort.Ints(out)
	return out
}

// load materializes one view through the mount. Mounts implementing
// vfs.ViewOpener (the in-process FS) hand the whole payload out in one
// call — pinned and by reference when the provider pins; the generic
// path copies through the descriptor surface and releases the
// underlying descriptor immediately.
func (s *Server) load(path string) (*vfs.View, error) {
	if vo, ok := s.mount.(vfs.ViewOpener); ok {
		return vo.OpenView(path)
	}
	fd, err := s.mount.Open(path)
	if err != nil {
		return nil, err
	}
	defer s.mount.Close(fd)
	data, err := s.mount.ReadAll(fd)
	if err != nil {
		return nil, err
	}
	xattrs := map[string]string{}
	if names, err := s.mount.Listxattr(fd); err == nil {
		for _, name := range names {
			if v, err := s.mount.Getxattr(fd, name); err == nil {
				xattrs[name] = v
			}
		}
	}
	return vfs.NewView(data, xattrs), nil
}

// raTake claims (and removes) the prefetch entry for path, if any.
func (s *Server) raTake(path string) *raEntry {
	s.ramu.Lock()
	defer s.ramu.Unlock()
	e, ok := s.ra[path]
	if !ok {
		return nil
	}
	delete(s.ra, path)
	for i, p := range s.raOrder {
		if p == path {
			s.raOrder = append(s.raOrder[:i], s.raOrder[i+1:]...)
			break
		}
	}
	return e
}

// scheduleReadahead prefetches the next depth iterations of the batch
// sequence containing p. Prefetches past the end of an epoch fail
// inside their goroutine and simply aren't cached as successes.
func (s *Server) scheduleReadahead(p vfs.Path, depth int) {
	s.ramu.Lock()
	defer s.ramu.Unlock()
	for i := 1; i <= depth; i++ {
		next := vfs.BatchPath(p.Task, p.Epoch, p.Iteration+i)
		if _, ok := s.ra[next]; ok {
			continue
		}
		if len(s.ra) >= raCap && !s.evictOneLocked() {
			return
		}
		e := &raEntry{done: make(chan struct{})}
		s.ra[next] = e
		s.raOrder = append(s.raOrder, next)
		s.rawg.Add(1)
		go func(path string, e *raEntry) {
			defer s.rawg.Done()
			defer close(e.done)
			e.view, e.err = s.timedLoad(path)
			if e.err != nil {
				// Don't cache failures: drop the entry so a later real
				// open retries (and reports) the error itself.
				s.raTake(path)
			} else {
				s.raBytes.Add(int64(len(e.view.Data)))
			}
		}(next, e)
	}
}

// evictOneLocked drops the oldest completed prefetch entry. Returns false
// if every cached entry is still materializing (then we skip scheduling
// more rather than block).
func (s *Server) evictOneLocked() bool {
	for i, p := range s.raOrder {
		e := s.ra[p]
		if e == nil {
			continue
		}
		select {
		case <-e.done:
			delete(s.ra, p)
			s.raOrder = append(s.raOrder[:i], s.raOrder[i+1:]...)
			if e.err == nil {
				s.raBytes.Add(-int64(len(e.view.Data)))
			}
			e.view.Release()
			return true
		default:
		}
	}
	return false
}

// --- response encoding ---

// respPool recycles response frame buffers on the hot read path.
var respPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 32<<10)
		return &b
	},
}

// send encodes and writes one response frame. payload (if non-nil)
// appends the op-specific body.
func (sess *session) send(id uint64, status uint8, payload func(b []byte) []byte) {
	bp := respPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, 0, 0, 0, 0)
	b = appendU64(b, id)
	b = append(b, status)
	if payload != nil {
		b = payload(b)
	}
	b = finishFrame(b)
	sess.wmu.Lock()
	_, err := sess.conn.Write(b)
	sess.wmu.Unlock()
	if err != nil {
		// The reader loop will notice the dead conn and reclaim state.
		sess.conn.Close()
	}
	*bp = b
	if cap(b) <= 1<<20 { // don't pin giant buffers in the pool
		respPool.Put(bp)
	}
}

// sendPayload writes a read response whose body is one u32-length blob.
// Pinned payloads go out zero-copy: a small pooled header plus the
// cache-resident chunk, handed to the kernel as one segmented write
// (net.Buffers → writev), so the payload bytes never land in an
// intermediate buffer. Unpinned payloads — and all payloads under
// Options.ForceCopy — take the contiguous copying path. The byte stream
// on the wire is identical either way.
func (sess *session) sendPayload(id uint64, status uint8, chunk []byte, pinned bool) {
	srv := sess.srv
	if !pinned || srv.opts.ForceCopy || len(chunk) == 0 {
		if len(chunk) > 0 { // empty EOF frames are not fallbacks
			srv.ctr.Add(ctrZCFallback, 1)
		}
		sess.send(id, status, func(b []byte) []byte { return appendBlob(b, chunk) })
		return
	}
	srv.ctr.Add(ctrZCHit, 1)
	bp := respPool.Get().(*[]byte)
	hdr := (*bp)[:0]
	hdr = append(hdr, 0, 0, 0, 0)
	hdr = appendU64(hdr, id)
	hdr = append(hdr, status)
	hdr = appendU32(hdr, uint32(len(chunk)))
	binary.BigEndian.PutUint32(hdr[:frameHeaderLen], uint32(len(hdr)-frameHeaderLen+len(chunk)))
	bufs := net.Buffers{hdr, chunk}
	sess.wmu.Lock()
	_, err := bufs.WriteTo(sess.conn)
	sess.wmu.Unlock()
	if err != nil {
		sess.conn.Close()
	}
	*bp = hdr
	respPool.Put(bp)
}

func (sess *session) sendError(id uint64, err error, msg string) {
	code := codeFor(err)
	sess.send(id, StatusErr, func(b []byte) []byte {
		b = appendU16(b, uint16(code))
		return appendString(b, msg)
	})
}

func (sess *session) sendStrings(id uint64, names []string) {
	sess.send(id, StatusOK, func(b []byte) []byte {
		b = appendU32(b, uint32(len(names)))
		for _, n := range names {
			b = appendString(b, n)
		}
		return b
	})
}

func appendU16(dst []byte, v uint16) []byte { return append(dst, byte(v>>8), byte(v)) }

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
