package viewserver

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"sand/internal/vfs"
)

// seedRequests covers every op with representative field values; shared
// with the fuzz harness as its seed corpus.
func seedRequests() []request {
	return []request{
		{id: 1, op: OpPing},
		{id: 2, op: OpOpen, path: "/train/0/0/view"},
		{id: 3, op: OpRead, fd: 7, n: 4096},
		{id: 4, op: OpReadAt, fd: 7, off: 1 << 20, n: 65536},
		{id: 5, op: OpGetxattr, fd: 7, name: "user.sand.labels"},
		{id: 6, op: OpListxattr, fd: 7},
		{id: 7, op: OpSize, fd: 7},
		{id: 8, op: OpReaddir, path: "/train"},
		{id: 9, op: OpClose, fd: 7},
		{id: 10, op: OpStats},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range seedRequests() {
		body := appendRequest(nil, want)
		got, err := decodeRequest(body)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.op, err)
		}
		if got != want {
			t.Fatalf("%s: roundtrip %+v != %+v", want.op, got, want)
		}
	}
}

func TestDecodeRequestMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},                              // shorter than the header
		{0, 0, 0, 0, 0, 0, 0, 1, 0},            // op 0
		{0, 0, 0, 0, 0, 0, 0, 1, 99},           // unknown op
		{0, 0, 0, 0, 0, 0, 0, 1, byte(OpOpen)}, // open with no path
		{0, 0, 0, 0, 0, 0, 0, 1, byte(OpRead)}, // read with no fd
		append(appendRequest(nil, request{op: OpPing}), 0xFF),       // trailing junk
		appendRequest(nil, request{op: OpGetxattr, fd: 1})[:10],     // truncated mid-payload
		append(appendRequest(nil, request{op: OpOpen}), 0xFF, 0xFF), // string length past end
	}
	for i, body := range cases {
		if _, err := decodeRequest(body); !errors.Is(err, ErrProtocol) {
			t.Fatalf("case %d: err = %v, want ErrProtocol", i, err)
		}
	}
	// Truncations of every valid request must error, never panic.
	for _, req := range seedRequests() {
		full := appendRequest(nil, req)
		for cut := 0; cut < len(full); cut++ {
			if _, err := decodeRequest(full[:cut]); err == nil {
				t.Fatalf("%s truncated at %d decoded successfully", req.op, cut)
			}
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello")
	frame := finishFrame(append(make([]byte, frameHeaderLen), body...))
	buf.Write(frame)
	got, err := readFrame(&buf, 64)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("readFrame = %q, %v", got, err)
	}
	// Oversized frame.
	buf.Reset()
	buf.Write(finishFrame(append(make([]byte, frameHeaderLen), make([]byte, 100)...)))
	if _, err := readFrame(&buf, 64); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized: %v, want ErrTooLarge", err)
	}
	// Truncated body.
	buf.Reset()
	buf.Write(frame[:len(frame)-2])
	if _, err := readFrame(&buf, 64); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated: %v, want ErrUnexpectedEOF", err)
	}
	// Truncated header.
	buf.Reset()
	buf.Write([]byte{0, 0})
	if _, err := readFrame(&buf, 64); err == nil {
		t.Fatal("truncated header decoded")
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	sentinels := []error{
		vfs.ErrNotExist, vfs.ErrBadFD, vfs.ErrIsDir,
		vfs.ErrNoXattr, vfs.ErrInvalidPath, ErrTooLarge, ErrProtocol,
	}
	for _, want := range sentinels {
		code := codeFor(want)
		back := errFor(code, "context")
		if !errors.Is(back, want) {
			t.Fatalf("sentinel %v did not survive the wire: got %v", want, back)
		}
	}
	if codeFor(errors.New("anything else")) != codeGeneric {
		t.Fatal("unknown errors should map to codeGeneric")
	}
	if err := errFor(codeGeneric, "boom"); err == nil {
		t.Fatal("generic code decoded to nil")
	}
}

func TestOpString(t *testing.T) {
	if OpOpen.String() != "open" || OpReadAt.String() != "readat" {
		t.Fatal("op names wrong")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op must render something")
	}
}
