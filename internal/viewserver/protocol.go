// Package viewserver is SAND's network dataplane: it exports a running
// engine's view filesystem (internal/vfs, the Table 1/2 surface) over
// TCP or unix sockets, so trainers on other machines — or other
// processes on the same node — read batch views exactly as they would
// through the in-process mount.
//
// The wire protocol is deliberately small: length-prefixed binary
// frames, one request/response pair per operation, sessions scoped to a
// connection. File descriptors are per-session and reclaimed when the
// connection drops, mirroring what a kernel does when a process holding
// open files dies.
//
// Frame layout (all integers big-endian):
//
//	u32 bodyLen | body
//
// Request body:
//
//	u64 reqID | u8 op | op-specific payload
//
// Response body:
//
//	u64 reqID | u8 status | payload (StatusErr: u16 code, str message)
//
// Strings are u16-length-prefixed, byte blobs u32-length-prefixed.
package viewserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"sand/internal/vfs"
)

// Op identifies a request type.
type Op uint8

// Wire operations. The set mirrors the vfs.Mount surface plus Ping and
// Stats for health checks and observability.
const (
	OpPing Op = iota + 1
	OpOpen
	OpRead
	OpReadAt
	OpGetxattr
	OpListxattr
	OpSize
	OpReaddir
	OpClose
	OpStats
	opMax
)

var opNames = map[Op]string{
	OpPing:      "ping",
	OpOpen:      "open",
	OpRead:      "read",
	OpReadAt:    "readat",
	OpGetxattr:  "getxattr",
	OpListxattr: "listxattr",
	OpSize:      "size",
	OpReaddir:   "readdir",
	OpClose:     "close",
	OpStats:     "stats",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Response status bytes.
const (
	// StatusOK carries a successful payload.
	StatusOK uint8 = 0
	// StatusErr carries an error code and message.
	StatusErr uint8 = 1
	// StatusEOF carries a (possibly empty) payload plus end-of-view,
	// mirroring vfs reads that return data together with io.EOF.
	StatusEOF uint8 = 2
)

// Protocol-level sentinel errors.
var (
	// ErrProtocol reports a malformed or out-of-sequence frame.
	ErrProtocol = errors.New("viewserver: protocol error")
	// ErrTooLarge reports a frame exceeding the negotiated maximum.
	ErrTooLarge = errors.New("viewserver: frame exceeds max message size")
	// ErrClosed reports use of a shut-down client or server.
	ErrClosed = errors.New("viewserver: closed")
)

// DefaultMaxMessage bounds a single frame. Batch views are chunked on
// the read path, so frames never need to exceed this.
const DefaultMaxMessage = 16 << 20

// frameHeaderLen is the byte length of the frame length prefix.
const frameHeaderLen = 4

// respHeaderLen is reqID + status.
const respHeaderLen = 9

// Error codes carried by StatusErr responses so clients can reconstruct
// the POSIX-shaped sentinel the server saw.
type errCode uint16

const (
	codeGeneric errCode = iota + 1
	codeNotExist
	codeBadFD
	codeIsDir
	codeNoXattr
	codeInvalid
	codeProtocol
	codeTooLarge
)

// codeFor maps a server-side error to its wire code.
func codeFor(err error) errCode {
	switch {
	case errors.Is(err, vfs.ErrNotExist):
		return codeNotExist
	case errors.Is(err, vfs.ErrBadFD):
		return codeBadFD
	case errors.Is(err, vfs.ErrIsDir):
		return codeIsDir
	case errors.Is(err, vfs.ErrNoXattr):
		return codeNoXattr
	case errors.Is(err, vfs.ErrInvalidPath):
		return codeInvalid
	case errors.Is(err, ErrTooLarge):
		return codeTooLarge
	case errors.Is(err, ErrProtocol):
		return codeProtocol
	default:
		return codeGeneric
	}
}

// errFor reconstructs a client-side error wrapping the matching sentinel,
// so errors.Is works identically against a local or remote mount.
func errFor(code errCode, msg string) error {
	switch code {
	case codeNotExist:
		return fmt.Errorf("%w (remote: %s)", vfs.ErrNotExist, msg)
	case codeBadFD:
		return fmt.Errorf("%w (remote: %s)", vfs.ErrBadFD, msg)
	case codeIsDir:
		return fmt.Errorf("%w (remote: %s)", vfs.ErrIsDir, msg)
	case codeNoXattr:
		return fmt.Errorf("%w (remote: %s)", vfs.ErrNoXattr, msg)
	case codeInvalid:
		return fmt.Errorf("%w (remote: %s)", vfs.ErrInvalidPath, msg)
	case codeTooLarge:
		return fmt.Errorf("%w (remote: %s)", ErrTooLarge, msg)
	case codeProtocol:
		return fmt.Errorf("%w (remote: %s)", ErrProtocol, msg)
	default:
		return fmt.Errorf("viewserver: remote error: %s", msg)
	}
}

// request is a decoded wire request. Only the fields relevant to op are
// meaningful.
type request struct {
	id   uint64
	op   Op
	path string // OpOpen, OpReaddir
	fd   uint32 // fd-addressed ops
	off  uint64 // OpReadAt
	n    uint32 // OpRead, OpReadAt
	name string // OpGetxattr
}

// appendRequest encodes a request body (without the frame length prefix).
func appendRequest(dst []byte, r request) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.id)
	dst = append(dst, byte(r.op))
	switch r.op {
	case OpOpen, OpReaddir:
		dst = appendString(dst, r.path)
	case OpRead:
		dst = binary.BigEndian.AppendUint32(dst, r.fd)
		dst = binary.BigEndian.AppendUint32(dst, r.n)
	case OpReadAt:
		dst = binary.BigEndian.AppendUint32(dst, r.fd)
		dst = binary.BigEndian.AppendUint64(dst, r.off)
		dst = binary.BigEndian.AppendUint32(dst, r.n)
	case OpGetxattr:
		dst = binary.BigEndian.AppendUint32(dst, r.fd)
		dst = appendString(dst, r.name)
	case OpListxattr, OpSize, OpClose:
		dst = binary.BigEndian.AppendUint32(dst, r.fd)
	case OpPing, OpStats:
		// no payload
	}
	return dst
}

// decodeRequest parses a request body. It never panics: malformed or
// truncated input returns an error wrapping ErrProtocol.
func decodeRequest(body []byte) (request, error) {
	var req request
	c := cursor{b: body}
	req.id = c.u64()
	req.op = Op(c.u8())
	if c.err != nil {
		return req, fmt.Errorf("%w: short request header", ErrProtocol)
	}
	if req.op == 0 || req.op >= opMax {
		return req, fmt.Errorf("%w: unknown op %d", ErrProtocol, req.op)
	}
	switch req.op {
	case OpOpen, OpReaddir:
		req.path = c.str()
	case OpRead:
		req.fd = c.u32()
		req.n = c.u32()
	case OpReadAt:
		req.fd = c.u32()
		req.off = c.u64()
		req.n = c.u32()
	case OpGetxattr:
		req.fd = c.u32()
		req.name = c.str()
	case OpListxattr, OpSize, OpClose:
		req.fd = c.u32()
	case OpPing, OpStats:
	}
	if c.err != nil {
		return req, fmt.Errorf("%w: truncated %s request", ErrProtocol, req.op)
	}
	if c.off != len(body) {
		return req, fmt.Errorf("%w: %d trailing bytes after %s request", ErrProtocol, len(body)-c.off, req.op)
	}
	return req, nil
}

// cursor is a bounds-checked big-endian reader over a frame body. After
// any underflow it sticks in the error state and returns zeros.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.b)-c.off < n {
		c.err = fmt.Errorf("%w: need %d bytes, have %d", ErrProtocol, n, len(c.b)-c.off)
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

// str reads a u16-length-prefixed string (copies out of the frame).
func (c *cursor) str() string {
	n := c.u16()
	return string(c.take(int(n)))
}

// blob reads a u32-length-prefixed byte slice (aliases the frame body).
func (c *cursor) blob() []byte {
	n := c.u32()
	return c.take(int(n))
}

func appendString(dst []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF] // protocol strings are paths/attr names; never this long
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendBlob(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// readFrame reads one length-prefixed frame body. Frames longer than max
// return ErrTooLarge without consuming the body (the connection is then
// unusable and must be closed).
func readFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// finishFrame stamps the length prefix of a frame built with 4 reserved
// leading bytes.
func finishFrame(b []byte) []byte {
	binary.BigEndian.PutUint32(b[:frameHeaderLen], uint32(len(b)-frameHeaderLen))
	return b
}

// readResponse reads one response frame from r, scattering the blob
// payload of an OK/EOF response directly into buf instead of staging
// the whole frame in an intermediate allocation — the receive half of
// the zero-copy dataplane. It tolerates arbitrary segmentation of the
// byte stream (the server's writev sends header and payload as separate
// segments). It returns the response status, the count of payload bytes
// written into buf and, for other statuses (StatusErr), the raw
// remainder of the body for decodeError.
//
// A blob longer than buf fills buf, drains the excess off r so the
// connection stays framed, and returns io.ErrShortBuffer: the caller
// sees the truncation instead of silently losing the tail.
func readResponse(r io.Reader, max int, wantID uint64, buf []byte) (status uint8, n int, errPayload []byte, err error) {
	var hdr [frameHeaderLen + respHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	bodyLen := int(binary.BigEndian.Uint32(hdr[:frameHeaderLen]))
	if bodyLen > max {
		return 0, 0, nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, bodyLen, max)
	}
	if bodyLen < respHeaderLen {
		return 0, 0, nil, fmt.Errorf("%w: short response header", ErrProtocol)
	}
	id := binary.BigEndian.Uint64(hdr[frameHeaderLen : frameHeaderLen+8])
	status = hdr[frameHeaderLen+8]
	rem := bodyLen - respHeaderLen
	if id != wantID {
		return 0, 0, nil, fmt.Errorf("%w: response id %d for request %d", ErrProtocol, id, wantID)
	}
	if status != StatusOK && status != StatusEOF {
		body := make([]byte, rem)
		if _, err := io.ReadFull(r, body); err != nil {
			return 0, 0, nil, noEOF(err)
		}
		return status, 0, body, nil
	}
	if rem < 4 {
		return 0, 0, nil, fmt.Errorf("%w: truncated read response", ErrProtocol)
	}
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return 0, 0, nil, noEOF(err)
	}
	rem -= 4
	blobLen := int(binary.BigEndian.Uint32(lenb[:]))
	if blobLen != rem {
		return 0, 0, nil, fmt.Errorf("%w: blob length %d in %d-byte remainder", ErrProtocol, blobLen, rem)
	}
	fill := blobLen
	short := fill > len(buf)
	if short {
		fill = len(buf)
	}
	if _, err := io.ReadFull(r, buf[:fill]); err != nil {
		return 0, 0, nil, noEOF(err)
	}
	if short {
		if _, err := io.CopyN(io.Discard, r, int64(blobLen-fill)); err != nil {
			return 0, 0, nil, noEOF(err)
		}
		return status, fill, nil, io.ErrShortBuffer
	}
	return status, fill, nil, nil
}

// noEOF converts a mid-frame io.EOF into io.ErrUnexpectedEOF.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
