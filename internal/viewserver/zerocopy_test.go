package viewserver

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"sand/internal/storage"
	"sand/internal/vfs"
)

// pinnedProvider is a testProvider whose payloads live in a real object
// store and are handed out as pinned references, like production batch
// views: the serve path is by-reference, eviction passes run against
// the same store, and every pin must reconcile to zero on release.
type pinnedProvider struct {
	p     testProvider
	store *storage.Store
}

func newPinnedProvider(t testing.TB, budget int64, shards int) *pinnedProvider {
	t.Helper()
	st, err := storage.Open(storage.Options{MemBudget: budget, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return &pinnedProvider{p: newProvider(), store: st}
}

func (pp *pinnedProvider) Materialize(vp vfs.Path) ([]byte, map[string]string, error) {
	return pp.p.Materialize(vp)
}

func (pp *pinnedProvider) List(dir string) ([]string, error) { return pp.p.List(dir) }

func (pp *pinnedProvider) MaterializePinned(vp vfs.Path) (*vfs.View, error) {
	data, xattrs, err := pp.p.Materialize(vp)
	if err != nil {
		return nil, err
	}
	key := "/zc" + vp.String()
	obj, pin, gerr := pp.store.GetPinned(key)
	if gerr != nil {
		// Not resident: populate, then pin. A racing eviction between
		// Put and GetPinned degrades to the unpinned fallback below.
		if perr := pp.store.Put(&storage.Object{Key: key, Data: data, Used: true, Ephemeral: true}); perr != nil {
			return vfs.NewView(data, xattrs), nil
		}
		obj, pin, gerr = pp.store.GetPinned(key)
		if gerr != nil {
			return vfs.NewView(data, xattrs), nil
		}
	}
	if pin == nil {
		return vfs.NewView(obj.Data, xattrs), nil
	}
	return vfs.NewPinnedView(obj.Data, xattrs, pin.Release), nil
}

// startPinnedServer launches a server whose mount pins batch payloads
// out of a store with the given budget/shards.
func startPinnedServer(t *testing.T, budget int64, shards int, opts Options) (*Server, *pinnedProvider, string) {
	t.Helper()
	pp := newPinnedProvider(t, budget, shards)
	srv := New(vfs.New(pp), opts)
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, pp, addr.String()
}

// TestZeroCopyServesPinned: reads of pinned views go out by reference
// (zerocopy.hit counts them), the bytes match the provider exactly, and
// every pin drains once descriptors close and the server shuts down.
func TestZeroCopyServesPinned(t *testing.T) {
	srv, pp, addr := startPinnedServer(t, 64<<20, 4, Options{ReadAhead: 2})
	c := dialT(t, addr)
	defer c.Shutdown()

	for i := 0; i < 6; i++ {
		path := vfs.BatchPath("train", 0, i)
		fd, err := c.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ReadAll(fd)
		if err != nil {
			t.Fatal(err)
		}
		if want := pp.p.payload(path); !bytes.Equal(got, want) {
			t.Fatalf("%s: zero-copy payload differs from provider", path)
		}
		if err := c.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.ZeroCopyHits == 0 {
		t.Fatalf("no zero-copy hits: %+v", st)
	}
	// The same counters are visible over the wire.
	rs, err := c.RemoteStats()
	if err != nil {
		t.Fatal(err)
	}
	if rs["dataplane.zerocopy.hit"] != st.ZeroCopyHits {
		t.Fatalf("remote zerocopy.hit=%d, server says %d", rs["dataplane.zerocopy.hit"], st.ZeroCopyHits)
	}
	// Close the server: read-ahead entries and any leftover descriptors
	// release their pins; accounting must reconcile exactly.
	c.Shutdown()
	srv.Close()
	if pb := pp.store.PinnedBytes(); pb != 0 {
		t.Fatalf("pinned bytes after shutdown = %d, want 0", pb)
	}
}

// TestForceCopyBaseline: with ForceCopy the wire bytes are identical
// but every non-empty read is a copy fallback and nothing goes out by
// reference.
func TestForceCopyBaseline(t *testing.T) {
	srv, pp, addr := startPinnedServer(t, 64<<20, 4, Options{ReadAhead: 2, ForceCopy: true})
	c := dialT(t, addr)
	defer c.Shutdown()

	path := vfs.BatchPath("train", 0, 0)
	fd, err := c.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAll(fd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pp.p.payload(path)) {
		t.Fatal("ForceCopy payload differs from provider")
	}
	c.Close(fd)
	st := srv.Stats()
	if st.ZeroCopyHits != 0 {
		t.Fatalf("ForceCopy served %d responses by reference", st.ZeroCopyHits)
	}
	if st.CopyFallbacks == 0 {
		t.Fatalf("no copy fallbacks recorded: %+v", st)
	}
}

// TestUnpinnedIsFallback: a mount without pinning (plain testProvider)
// serves correctly and counts every payload as a copy fallback.
func TestUnpinnedIsFallback(t *testing.T) {
	srv, _, addr := startServer(t, Options{})
	c := dialT(t, addr)
	defer c.Shutdown()
	fd, err := c.Open("/train/0/0/view")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAll(fd); err != nil {
		t.Fatal(err)
	}
	c.Close(fd)
	st := srv.Stats()
	if st.ZeroCopyHits != 0 {
		t.Fatalf("unpinned mount produced %d zero-copy hits", st.ZeroCopyHits)
	}
	if st.CopyFallbacks == 0 {
		t.Fatal("unpinned payload not counted as fallback")
	}
}

// TestZeroCopyEvictionStress hammers concurrent remote batch reads
// while the store runs eviction passes at a tight budget and a churn
// writer floods it with junk: every response must match the provider
// byte-for-byte (no pinned payload mutated or freed mid-response), and
// all pins must reconcile to zero afterwards. Run with -race.
func TestZeroCopyEvictionStress(t *testing.T) {
	srv, pp, addr := startPinnedServer(t, 96<<10, 4, Options{ReadAhead: 2})

	const clients = 4
	const iters = 40
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := dialT(t, addr)
			defer c.Shutdown()
			for i := 0; i < iters; i++ {
				path := vfs.BatchPath("train", ci%2, (ci*5+i)%16)
				fd, err := c.Open(path)
				if err != nil {
					errs[ci] = err
					return
				}
				got, err := c.ReadAll(fd)
				if err != nil {
					errs[ci] = fmt.Errorf("%s: %w", path, err)
					return
				}
				if want := pp.p.payload(path); !bytes.Equal(got, want) {
					errs[ci] = fmt.Errorf("%s: payload corrupted under eviction churn", path)
					return
				}
				if err := c.Close(fd); err != nil {
					errs[ci] = err
					return
				}
			}
		}(ci)
	}
	// Churn writer: keep the store over its watermark so eviction passes
	// run concurrently with pinned serves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		junk := make([]byte, 8<<10)
		for i := 0; i < 400; i++ {
			obj := &storage.Object{Key: fmt.Sprintf("/junk/%d", i%32), Data: junk, Used: true, Ephemeral: true}
			if err := pp.store.Put(obj); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", ci, err)
		}
	}
	srv.Close()
	if pb := pp.store.PinnedBytes(); pb != 0 {
		t.Fatalf("pinned bytes after stress = %d, want 0", pb)
	}
}

// fakeBlobServer speaks just enough of the protocol to answer pings and
// opens, and answers every read with the full payload regardless of the
// requested length — a misbehaving peer for the short-buffer contract.
func fakeBlobServer(t *testing.T, payload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					body, err := readFrame(conn, DefaultMaxMessage)
					if err != nil {
						return
					}
					req, err := decodeRequest(body)
					if err != nil {
						return
					}
					resp := make([]byte, frameHeaderLen)
					resp = appendU64(resp, req.id)
					switch req.op {
					case OpOpen:
						resp = append(resp, StatusOK)
						resp = appendU32(resp, 3)
						resp = appendU64(resp, uint64(len(payload)))
					case OpRead, OpReadAt:
						resp = append(resp, StatusOK)
						resp = appendBlob(resp, payload) // ignores req.n on purpose
					default:
						resp = append(resp, StatusOK)
					}
					if _, err := conn.Write(finishFrame(resp)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestShortBufferRead is the regression for the silent-truncation bug:
// a server blob longer than the caller's buffer must surface as
// io.ErrShortBuffer with the prefix delivered — and the connection must
// stay framed (the excess is drained, later requests still work).
func TestShortBufferRead(t *testing.T) {
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i + 1)
	}
	addr := fakeBlobServer(t, payload)
	c := dialT(t, addr)
	defer c.Shutdown()

	fd, err := c.Open("/train/0/0/view")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := c.Read(fd, buf)
	if !errors.Is(err, io.ErrShortBuffer) {
		t.Fatalf("Read with short buffer: err=%v, want io.ErrShortBuffer", err)
	}
	if n != len(buf) || !bytes.Equal(buf, payload[:len(buf)]) {
		t.Fatalf("Read returned %d bytes %x, want prefix %x", n, buf[:n], payload[:len(buf)])
	}
	n, err = c.ReadAt(fd, buf, 0)
	if !errors.Is(err, io.ErrShortBuffer) || n != len(buf) {
		t.Fatalf("ReadAt with short buffer: n=%d err=%v, want %d io.ErrShortBuffer", n, err, len(buf))
	}
	// The frame remainder was drained: the session still round-trips.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after short-buffer drain: %v", err)
	}
	// A big-enough buffer gets the whole blob with no error.
	full := make([]byte, len(payload))
	n, err = c.Read(fd, full)
	if err != nil || n != len(payload) || !bytes.Equal(full, payload) {
		t.Fatalf("full read after drain: n=%d err=%v", n, err)
	}
}
