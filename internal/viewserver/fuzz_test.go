package viewserver

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds is the seeded corpus: valid encodings of every op, their
// truncations at a few offsets, and hand-picked malformed frames. It is
// exercised by the normal `go test` run (each seed runs as a unit case)
// and used as the starting corpus for `go test -fuzz=FuzzDecodeRequest`.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for _, req := range seedRequests() {
		full := appendRequest(nil, req)
		seeds = append(seeds, full)
		for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
			if cut >= 0 && cut < len(full) {
				seeds = append(seeds, full[:cut])
			}
		}
	}
	seeds = append(seeds,
		nil,
		bytes.Repeat([]byte{0xFF}, 9),
		append(appendRequest(nil, request{op: OpOpen}), 0xFF, 0xFF),
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, byte(OpReadAt), 1},
	)
	return seeds
}

// FuzzDecodeRequest asserts the wire decoder never panics on malformed
// or truncated frames, and that every successfully decoded request
// re-encodes to a byte-identical frame (a canonical-form invariant).
func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		re := appendRequest(nil, req)
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded request %+v re-encodes to % x, input % x", req, re, data)
		}
	})
}

// chunkReader delivers at most chunk bytes per Read call: it simulates
// the segmentation a writev sender plus TCP fragmentation can produce,
// including a response header split across segments.
type chunkReader struct {
	r     io.Reader
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.chunk > 0 && len(p) > c.chunk {
		p = p[:c.chunk]
	}
	return c.r.Read(p)
}

// respFrame builds one response frame: reqID, status, u32-length blob.
func respFrame(id uint64, status uint8, blob []byte) []byte {
	b := make([]byte, frameHeaderLen)
	b = appendU64(b, id)
	b = append(b, status)
	b = appendBlob(b, blob)
	return finishFrame(b)
}

// respSeeds is the streaming-decoder corpus: well-formed responses
// (zero-length, small, and max-length payloads for the fuzz frame
// budget), an error response, and malformed variants (bad blob length,
// truncations).
func respSeeds() [][]byte {
	const fuzzMax = 1 << 16 // max frame body the fuzz target allows
	errBody := appendString(appendU16(nil, uint16(codeNotExist)), "no such view")
	errFrame := make([]byte, frameHeaderLen)
	errFrame = appendU64(errFrame, 1)
	errFrame = append(errFrame, StatusErr)
	errFrame = append(errFrame, errBody...)
	errFrame = finishFrame(errFrame)

	badLen := respFrame(1, StatusOK, []byte("payload"))
	badLen[frameHeaderLen+respHeaderLen] = 0xFF // blob length disagrees with frame

	seeds := [][]byte{
		respFrame(1, StatusOK, nil), // zero-length payload
		respFrame(1, StatusOK, []byte("hello, view")),
		respFrame(1, StatusEOF, nil),
		respFrame(1, StatusEOF, []byte("tail")),
		respFrame(1, StatusOK, bytes.Repeat([]byte{0xAB}, fuzzMax-respHeaderLen-4)), // max-length payload
		respFrame(2, StatusOK, []byte("wrong id")),
		errFrame,
		badLen,
	}
	full := respFrame(1, StatusOK, []byte("truncate me"))
	for _, cut := range []int{0, 3, frameHeaderLen, frameHeaderLen + 5, len(full) - 1} {
		seeds = append(seeds, full[:cut])
	}
	return seeds
}

// FuzzReadResponse asserts the streaming response decoder never panics,
// never overruns the caller's buffer, and — the writev contract — is
// insensitive to how the byte stream is segmented: decoding through
// 1..32-byte chunks must agree exactly with decoding the contiguous
// stream.
func FuzzReadResponse(f *testing.F) {
	for _, s := range respSeeds() {
		f.Add(s, uint8(1), uint16(64))   // byte-at-a-time: header split across segments
		f.Add(s, uint8(13), uint16(11))  // odd segment size, short buffer
		f.Add(s, uint8(32), uint16(512)) // roomy buffer
		f.Add(s, uint8(5), uint16(0))    // zero-length destination
	}
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8, buflen uint16) {
		const max = 1 << 16
		buf := make([]byte, int(buflen)%4096)
		seg := &chunkReader{r: bytes.NewReader(data), chunk: int(chunk%32) + 1}
		status, n, errPayload, err := readResponse(seg, max, 1, buf)
		if n > len(buf) {
			t.Fatalf("decoder overran buffer: n=%d > len=%d", n, len(buf))
		}

		buf2 := make([]byte, len(buf))
		status2, n2, errPayload2, err2 := readResponse(bytes.NewReader(data), max, 1, buf2)
		if status != status2 || n != n2 || !bytes.Equal(errPayload, errPayload2) {
			t.Fatalf("segmented decode (%d,%d) differs from contiguous (%d,%d)", status, n, status2, n2)
		}
		if (err == nil) != (err2 == nil) ||
			errors.Is(err, io.ErrShortBuffer) != errors.Is(err2, io.ErrShortBuffer) {
			t.Fatalf("segmented decode err %v, contiguous %v", err, err2)
		}
		if !bytes.Equal(buf[:n], buf2[:n2]) {
			t.Fatal("segmented decode filled different bytes than contiguous")
		}
	})
}

// FuzzCursor asserts the low-level bounds-checked reader sticks on error
// and never reads past the buffer regardless of call sequence.
func FuzzCursor(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3))
	f.Add(appendString(appendBlob(nil, []byte("blob")), "str"), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, sequence uint8) {
		c := cursor{b: data}
		for i := 0; i < 8; i++ {
			switch (sequence >> (i % 8)) % 6 {
			case 0:
				c.u8()
			case 1:
				c.u16()
			case 2:
				c.u32()
			case 3:
				c.u64()
			case 4:
				c.str()
			case 5:
				c.blob()
			}
		}
		if c.off > len(data) {
			t.Fatalf("cursor overran buffer: off %d > len %d", c.off, len(data))
		}
	})
}
