package viewserver

import (
	"bytes"
	"testing"
)

// fuzzSeeds is the seeded corpus: valid encodings of every op, their
// truncations at a few offsets, and hand-picked malformed frames. It is
// exercised by the normal `go test` run (each seed runs as a unit case)
// and used as the starting corpus for `go test -fuzz=FuzzDecodeRequest`.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for _, req := range seedRequests() {
		full := appendRequest(nil, req)
		seeds = append(seeds, full)
		for _, cut := range []int{0, 1, len(full) / 2, len(full) - 1} {
			if cut >= 0 && cut < len(full) {
				seeds = append(seeds, full[:cut])
			}
		}
	}
	seeds = append(seeds,
		nil,
		bytes.Repeat([]byte{0xFF}, 9),
		append(appendRequest(nil, request{op: OpOpen}), 0xFF, 0xFF),
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, byte(OpReadAt), 1},
	)
	return seeds
}

// FuzzDecodeRequest asserts the wire decoder never panics on malformed
// or truncated frames, and that every successfully decoded request
// re-encodes to a byte-identical frame (a canonical-form invariant).
func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		re := appendRequest(nil, req)
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded request %+v re-encodes to % x, input % x", req, re, data)
		}
	})
}

// FuzzCursor asserts the low-level bounds-checked reader sticks on error
// and never reads past the buffer regardless of call sequence.
func FuzzCursor(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3))
	f.Add(appendString(appendBlob(nil, []byte("blob")), "str"), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, sequence uint8) {
		c := cursor{b: data}
		for i := 0; i < 8; i++ {
			switch (sequence >> (i % 8)) % 6 {
			case 0:
				c.u8()
			case 1:
				c.u16()
			case 2:
				c.u32()
			case 3:
				c.u64()
			case 4:
				c.str()
			case 5:
				c.blob()
			}
		}
		if c.off > len(data) {
			t.Fatalf("cursor overran buffer: off %d > len %d", c.off, len(data))
		}
	})
}
