package dataset

// Catalogs describing the paper's three evaluation datasets, scaled for
// simulation. The simulator uses a catalog's statistics (video count,
// resolution, duration, GOP) to derive preprocessing costs; the real
// engine uses miniature in-memory instances generated with Miniature().

// Catalog summarizes a dataset's cost-relevant statistics.
type Catalog struct {
	Name string
	// VideoCount is the number of videos in the full dataset.
	VideoCount int
	// W, H, C are the decoded frame geometry.
	W, H, C int
	// MeanFrames is the average number of frames per video.
	MeanFrames int
	FPS        int
	GOP        int
	// EncodedBytesPerVideo approximates the on-disk compressed size.
	EncodedBytesPerVideo int64
}

// RawBytesPerFrame returns the decoded size of one frame.
func (c Catalog) RawBytesPerFrame() int64 {
	return int64(c.W) * int64(c.H) * int64(c.C)
}

// RawBytes returns the decoded size of the entire dataset — for
// Kinetics400 this lands near the ~80 TB figure the paper quotes.
func (c Catalog) RawBytes() int64 {
	return c.RawBytesPerFrame() * int64(c.MeanFrames) * int64(c.VideoCount)
}

// EncodedBytes returns the compressed size of the entire dataset.
func (c Catalog) EncodedBytes() int64 {
	return c.EncodedBytesPerVideo * int64(c.VideoCount)
}

// The three datasets from §7.1 of the paper.
var (
	// Kinetics400: 250k videos, up to 720p, ~10s at 30fps. The paper
	// quotes ~350 GB encoded and ~80 TB as raw frames.
	Kinetics400 = Catalog{
		Name:       "kinetics-400",
		VideoCount: 250000,
		W:          1280, H: 720, C: 3,
		MeanFrames: 300, FPS: 30, GOP: 30,
		EncodedBytesPerVideo: 1_400_000, // ~350 GB / 250k videos
	}
	// HDVILA: 100k clips at 720p for video captioning.
	HDVILA = Catalog{
		Name:       "hd-vila",
		VideoCount: 100000,
		W:          1280, H: 720, C: 3,
		MeanFrames: 400, FPS: 30, GOP: 30,
		EncodedBytesPerVideo: 2_000_000,
	}
	// YouTube1080p: the curated super-resolution set of 1080p videos.
	YouTube1080p = Catalog{
		Name:       "youtube-1080p",
		VideoCount: 5000,
		W:          1920, H: 1080, C: 3,
		MeanFrames: 600, FPS: 30, GOP: 30,
		EncodedBytesPerVideo: 12_000_000,
	}
)

// Miniature generates a small in-memory dataset with the catalog's shape
// (GOP, fps, aspect) scaled down to the given geometry and count, suitable
// for the real engine in tests and examples.
func (c Catalog) Miniature(videos, w, h, frames int, seed int64) (*Dataset, error) {
	return Generate(c.Name+"-mini", VideoSpec{
		W: w, H: h, C: c.C,
		Frames: frames, FPS: c.FPS, GOP: c.GOP,
	}, videos, seed)
}
