// Package dataset generates the synthetic video corpora SAND's tests,
// examples and experiments run on, standing in for Kinetics-400, HD-VILA
// and the paper's curated 1080p YouTube set (which we cannot redistribute
// or download offline).
//
// Videos are procedural: a static textured background with several moving
// sprites, parameterized by a per-video seed so content is deterministic
// and unique per video. What matters for reproduction is not the pictures
// but the cost structure — resolution, frame count, GOP length and
// compressibility — which the generator controls precisely.
package dataset

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sand/internal/codec"
	"sand/internal/frame"
)

// VideoSpec describes one synthetic video to generate.
type VideoSpec struct {
	Name    string
	W, H, C int
	Frames  int
	FPS     int
	GOP     int
	Seed    int64
	// Label is the classification label (or caption) attached to the video.
	Label string
}

// GenerateClip renders the raw frames for a spec.
func GenerateClip(spec VideoSpec) (*frame.Clip, error) {
	if spec.W <= 0 || spec.H <= 0 || spec.C <= 0 || spec.Frames <= 0 {
		return nil, fmt.Errorf("dataset: invalid spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	// Static background texture.
	bg := frame.New(spec.W, spec.H, spec.C)
	fx := rng.Intn(5) + 2
	fy := rng.Intn(7) + 3
	for c := 0; c < spec.C; c++ {
		phase := rng.Intn(64)
		plane := bg.Plane(c)
		for y := 0; y < spec.H; y++ {
			for x := 0; x < spec.W; x++ {
				plane[y*spec.W+x] = byte((x*fx+y*fy+phase)%128 + rng.Intn(6))
			}
		}
	}
	// Moving sprites.
	type sprite struct {
		x, y, w, h float64
		dx, dy     float64
		value      byte
	}
	nSprites := rng.Intn(3) + 2
	sprites := make([]sprite, nSprites)
	for i := range sprites {
		sprites[i] = sprite{
			x:     rng.Float64() * float64(spec.W),
			y:     rng.Float64() * float64(spec.H),
			w:     float64(spec.W/8 + rng.Intn(spec.W/8+1)),
			h:     float64(spec.H/8 + rng.Intn(spec.H/8+1)),
			dx:    rng.Float64()*4 - 2,
			dy:    rng.Float64()*4 - 2,
			value: byte(180 + rng.Intn(70)),
		}
	}
	frames := make([]*frame.Frame, spec.Frames)
	for i := range frames {
		f := bg.Clone()
		for si := range sprites {
			s := &sprites[si]
			x0, y0 := int(s.x), int(s.y)
			for c := 0; c < spec.C; c++ {
				for y := y0; y < y0+int(s.h) && y < spec.H; y++ {
					if y < 0 {
						continue
					}
					for x := x0; x < x0+int(s.w) && x < spec.W; x++ {
						if x < 0 {
							continue
						}
						f.Set(x, y, c, s.value)
					}
				}
			}
			s.x += s.dx
			s.y += s.dy
			if s.x < -s.w || s.x > float64(spec.W) {
				s.dx = -s.dx
			}
			if s.y < -s.h || s.y > float64(spec.H) {
				s.dy = -s.dy
			}
		}
		f.Index = i
		frames[i] = f
	}
	return frame.NewClip(frames)
}

// GenerateVideo renders and encodes a spec.
func GenerateVideo(spec VideoSpec) (*codec.Video, error) {
	clip, err := GenerateClip(spec)
	if err != nil {
		return nil, err
	}
	gop := spec.GOP
	if gop == 0 {
		gop = codec.DefaultGOP
	}
	return codec.Encode(clip, codec.EncodeParams{GOP: gop, FPS: spec.FPS})
}

// Dataset is an in-memory or on-disk collection of encoded videos.
type Dataset struct {
	Name   string
	Videos []Entry
}

// Entry is one video in a dataset.
type Entry struct {
	Spec VideoSpec
	// Video is set for in-memory datasets; Path for on-disk ones.
	Video *codec.Video
	Path  string
}

// Generate builds an in-memory dataset of n videos derived from a base
// spec; each video gets a distinct seed, name and slightly varied length.
func Generate(name string, base VideoSpec, n int, seed int64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: need at least one video")
	}
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"archery", "bowling", "cooking", "dancing", "juggling", "surfing", "typing", "welding"}
	ds := &Dataset{Name: name}
	for i := 0; i < n; i++ {
		spec := base
		spec.Name = fmt.Sprintf("video_%04d", i)
		spec.Seed = rng.Int63()
		spec.Label = labels[i%len(labels)]
		// Natural datasets have varied durations; keep within ±25%.
		if spec.Frames >= 8 {
			spec.Frames += rng.Intn(spec.Frames/4+1) - spec.Frames/8
		}
		v, err := GenerateVideo(spec)
		if err != nil {
			return nil, fmt.Errorf("dataset: video %d: %w", i, err)
		}
		ds.Videos = append(ds.Videos, Entry{Spec: spec, Video: v})
	}
	return ds, nil
}

// WriteDir persists every video as <dir>/<name>.tvc plus a labels file.
func (d *Dataset) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	var labels strings.Builder
	for i := range d.Videos {
		e := &d.Videos[i]
		if e.Video == nil {
			return fmt.Errorf("dataset: video %s has no encoded data", e.Spec.Name)
		}
		path := filepath.Join(dir, e.Spec.Name+".tvc")
		if err := os.WriteFile(path, e.Video.Data, 0o644); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		e.Path = path
		fmt.Fprintf(&labels, "%s %s\n", e.Spec.Name, e.Spec.Label)
	}
	return os.WriteFile(filepath.Join(dir, "labels.txt"), []byte(labels.String()), 0o644)
}

// LoadDir opens a directory of .tvc files as a dataset. Videos are parsed
// (indexes validated) but payloads stay memory-mapped to the loaded bytes.
func LoadDir(dir string) (*Dataset, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	labels := map[string]string{}
	if data, err := os.ReadFile(filepath.Join(dir, "labels.txt")); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 2 {
				labels[fields[0]] = fields[1]
			}
		}
	}
	ds := &Dataset{Name: filepath.Base(dir)}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".tvc") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		v, err := codec.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", ent.Name(), err)
		}
		name := strings.TrimSuffix(ent.Name(), ".tvc")
		ds.Videos = append(ds.Videos, Entry{
			Spec: VideoSpec{
				Name: name, W: v.W, H: v.H, C: v.C,
				Frames: v.FrameCount, FPS: v.FPS, GOP: v.GOP,
				Label: labels[name],
			},
			Video: v,
			Path:  filepath.Join(dir, ent.Name()),
		})
	}
	if len(ds.Videos) == 0 {
		return nil, fmt.Errorf("dataset: no .tvc videos in %s", dir)
	}
	sort.Slice(ds.Videos, func(i, j int) bool { return ds.Videos[i].Spec.Name < ds.Videos[j].Spec.Name })
	return ds, nil
}

// Find returns the entry with the given name.
func (d *Dataset) Find(name string) (*Entry, bool) {
	for i := range d.Videos {
		if d.Videos[i].Spec.Name == name {
			return &d.Videos[i], true
		}
	}
	return nil, false
}

// TotalEncodedBytes sums the compressed container sizes.
func (d *Dataset) TotalEncodedBytes() int64 {
	var n int64
	for i := range d.Videos {
		if d.Videos[i].Video != nil {
			n += int64(d.Videos[i].Video.Bytes())
		}
	}
	return n
}

// TotalRawBytes sums the decoded sizes of all frames — the "80 TB if
// stored as images" number the paper quotes for Kinetics-400.
func (d *Dataset) TotalRawBytes() int64 {
	var n int64
	for i := range d.Videos {
		s := d.Videos[i].Spec
		n += int64(s.W) * int64(s.H) * int64(s.C) * int64(s.Frames)
	}
	return n
}
