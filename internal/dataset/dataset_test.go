package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"sand/internal/codec"
)

func TestGenerateClipDeterministic(t *testing.T) {
	spec := VideoSpec{W: 32, H: 24, C: 3, Frames: 10, FPS: 30, Seed: 99}
	a, err := GenerateClip(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateClip(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		if !a.Frames[i].Equal(b.Frames[i]) {
			t.Fatalf("same seed produced different frame %d", i)
		}
	}
	spec.Seed = 100
	c, _ := GenerateClip(spec)
	same := true
	for i := range a.Frames {
		if !a.Frames[i].Equal(c.Frames[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical content")
	}
}

func TestGenerateClipTemporalCoherence(t *testing.T) {
	// Consecutive frames should differ (motion) but only in a minority of
	// pixels (static background) — the property that makes P-frames cheap.
	clip, err := GenerateClip(VideoSpec{W: 64, H: 48, C: 1, Frames: 5, FPS: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < clip.Len(); i++ {
		diff := 0
		a, b := clip.Frames[i-1], clip.Frames[i]
		for j := range a.Pix {
			if a.Pix[j] != b.Pix[j] {
				diff++
			}
		}
		if diff == 0 {
			t.Fatalf("frames %d and %d identical; no motion", i-1, i)
		}
		if diff > len(a.Pix)/2 {
			t.Fatalf("frames %d and %d differ in %d/%d pixels; background not static", i-1, i, diff, len(a.Pix))
		}
	}
}

func TestGenerateClipValidation(t *testing.T) {
	if _, err := GenerateClip(VideoSpec{W: 0, H: 8, C: 1, Frames: 1}); err == nil {
		t.Fatal("accepted zero width")
	}
	if _, err := GenerateClip(VideoSpec{W: 8, H: 8, C: 1, Frames: 0}); err == nil {
		t.Fatal("accepted zero frames")
	}
}

func TestGenerateVideoDecodes(t *testing.T) {
	spec := VideoSpec{W: 32, H: 24, C: 3, Frames: 12, FPS: 30, GOP: 6, Seed: 3}
	v, err := GenerateVideo(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.FrameCount != 12 || v.GOP != 6 {
		t.Fatalf("video metadata %+v", v)
	}
	clip, _ := GenerateClip(spec)
	out, err := codec.NewDecoder(v, nil).DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range clip.Frames {
		if !clip.Frames[i].Equal(out.Frames[i]) {
			t.Fatalf("encoded video frame %d differs from generated clip", i)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	ds, err := Generate("test", VideoSpec{W: 16, H: 16, C: 1, Frames: 16, FPS: 30, GOP: 8}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Videos) != 5 {
		t.Fatalf("got %d videos", len(ds.Videos))
	}
	names := map[string]bool{}
	for _, e := range ds.Videos {
		if names[e.Spec.Name] {
			t.Fatalf("duplicate name %s", e.Spec.Name)
		}
		names[e.Spec.Name] = true
		if e.Spec.Label == "" {
			t.Fatal("missing label")
		}
		if e.Video == nil {
			t.Fatal("missing encoded video")
		}
	}
	if ds.TotalEncodedBytes() <= 0 || ds.TotalRawBytes() <= ds.TotalEncodedBytes() {
		t.Fatalf("byte accounting wrong: enc=%d raw=%d", ds.TotalEncodedBytes(), ds.TotalRawBytes())
	}
	if _, err := Generate("x", VideoSpec{W: 8, H: 8, C: 1, Frames: 4}, 0, 1); err == nil {
		t.Fatal("accepted zero-video dataset")
	}
}

func TestWriteAndLoadDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	ds, err := Generate("disk", VideoSpec{W: 16, H: 12, C: 3, Frames: 10, FPS: 30, GOP: 5}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Videos) != 3 {
		t.Fatalf("loaded %d videos", len(loaded.Videos))
	}
	for i, e := range loaded.Videos {
		orig := ds.Videos[i]
		if e.Spec.Name != orig.Spec.Name {
			t.Fatalf("video %d name %q != %q", i, e.Spec.Name, orig.Spec.Name)
		}
		if e.Spec.Label != orig.Spec.Label {
			t.Fatalf("label lost: %q != %q", e.Spec.Label, orig.Spec.Label)
		}
		if e.Video.FrameCount != orig.Video.FrameCount {
			t.Fatal("frame count mismatch after disk round trip")
		}
		// Decode a frame to prove payload integrity.
		if _, err := codec.NewDecoder(e.Video, nil).Frame(0); err != nil {
			t.Fatalf("decode after load: %v", err)
		}
	}
	if _, ok := loaded.Find("video_0001"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := loaded.Find("nope"); ok {
		t.Fatal("Find found a ghost")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/definitely/not/here"); err == nil {
		t.Fatal("accepted missing dir")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Fatal("accepted empty dir")
	}
	bad := t.TempDir()
	os.WriteFile(filepath.Join(bad, "junk.tvc"), []byte("not a video"), 0o644)
	if _, err := LoadDir(bad); err == nil {
		t.Fatal("accepted corrupt video")
	}
}

func TestCatalogArithmetic(t *testing.T) {
	c := Kinetics400
	if c.RawBytesPerFrame() != 1280*720*3 {
		t.Fatal("raw bytes per frame")
	}
	// The paper quotes ~80 TB raw for Kinetics-400; our catalog should be
	// in that ballpark (within 3x).
	raw := c.RawBytes()
	if raw < 60e12 || raw > 300e12 {
		t.Fatalf("Kinetics400 raw bytes = %d, expected ~2e14 (paper: ~80 TB)", raw)
	}
	enc := c.EncodedBytes()
	if enc < 200e9 || enc > 500e9 {
		t.Fatalf("Kinetics400 encoded = %d, expected ~350 GB", enc)
	}
	if HDVILA.VideoCount != 100000 || YouTube1080p.W != 1920 {
		t.Fatal("catalog constants drifted")
	}
}

func TestCatalogMiniature(t *testing.T) {
	ds, err := Kinetics400.Miniature(4, 32, 24, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Videos) != 4 {
		t.Fatalf("got %d videos", len(ds.Videos))
	}
	if ds.Videos[0].Video.GOP != Kinetics400.GOP {
		t.Fatal("miniature lost GOP structure")
	}
}
