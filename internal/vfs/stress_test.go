package vfs

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

// stressProvider materializes deterministic payloads keyed by path so
// many goroutines can validate what they read.
type stressProvider struct{}

func (stressProvider) Materialize(p Path) ([]byte, map[string]string, error) {
	raw := p.String()
	data := make([]byte, 512+len(raw))
	for i := range data {
		data[i] = byte(i * (len(raw) + 1))
	}
	return data, map[string]string{
		"user.sand.path": raw,
		"user.sand.kind": p.Kind.String(),
	}, nil
}

func (stressProvider) List(dir string) ([]string, error) {
	return []string{"a", "b", "c"}, nil
}

// TestFSConcurrentStress hammers one FS from many goroutines with
// interleaved Open/Read/ReadAt/Seek/Getxattr/Listxattr/Size/Close on a
// small set of shared paths, with concurrent Stats and Readdir readers.
// Run under -race (the CI gate does) to catch fd-table and counter races.
func TestFSConcurrentStress(t *testing.T) {
	fs := New(stressProvider{})
	paths := make([]string, 8)
	for i := range paths {
		paths[i] = fmt.Sprintf("/stress/%d/%d/view", i%2, i)
	}

	const workers = 32
	const iters = 200
	var wg sync.WaitGroup
	errCh := make(chan error, workers)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < iters; i++ {
				path := paths[(w+i)%len(paths)]
				fd, err := fs.Open(path)
				if err != nil {
					errCh <- fmt.Errorf("open %s: %w", path, err)
					return
				}
				size, err := fs.Size(fd)
				if err != nil || size == 0 {
					errCh <- fmt.Errorf("size %s: %d, %w", path, size, err)
					return
				}
				if _, err := fs.ReadAt(fd, buf, size/2); err != nil && !errors.Is(err, io.EOF) {
					errCh <- fmt.Errorf("readat: %w", err)
					return
				}
				if _, err := fs.Read(fd, buf); err != nil && !errors.Is(err, io.EOF) {
					errCh <- fmt.Errorf("read: %w", err)
					return
				}
				if _, err := fs.Seek(fd, 0, SeekSet); err != nil {
					errCh <- fmt.Errorf("seek: %w", err)
					return
				}
				if i%3 == 0 {
					if _, err := fs.ReadAll(fd); err != nil {
						errCh <- fmt.Errorf("readall: %w", err)
						return
					}
				}
				if v, err := fs.Getxattr(fd, "user.sand.path"); err != nil || v != path {
					errCh <- fmt.Errorf("getxattr %s: %q, %w", path, v, err)
					return
				}
				if names, err := fs.Listxattr(fd); err != nil || len(names) != 2 {
					errCh <- fmt.Errorf("listxattr: %v, %w", names, err)
					return
				}
				if err := fs.Close(fd); err != nil {
					errCh <- fmt.Errorf("close: %w", err)
					return
				}
				// Closed descriptors must be invalid immediately.
				if _, err := fs.Read(fd, buf); !errors.Is(err, ErrBadFD) {
					errCh <- fmt.Errorf("read after close: %w, want ErrBadFD", err)
					return
				}
			}
		}(w)
	}
	// Concurrent observers: stats snapshots and directory listings must
	// never race with the op path.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := fs.Stats()
			if st.Closes > st.Opens {
				select {
				case errCh <- fmt.Errorf("closes %d > opens %d", st.Closes, st.Opens):
				default:
				}
				return
			}
			if _, err := fs.Readdir("/stress"); err != nil {
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	obs.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	st := fs.Stats()
	if st.OpenFDs != 0 {
		t.Fatalf("leaked %d fds", st.OpenFDs)
	}
	if want := int64(workers * iters); st.Opens != want || st.Closes != want {
		t.Fatalf("opens=%d closes=%d, want %d", st.Opens, st.Closes, want)
	}
	if st.BytesRead == 0 {
		t.Fatal("no bytes read")
	}
}
