// Package vfs implements SAND's view filesystem: the POSIX-shaped
// interface (Table 2 of the paper) through which training code opens,
// reads and stats views addressed by the Table 1 path scheme:
//
//	/{task_name}/{video_name}.mp4                  encoded video
//	/{task_name}/{video_name}/frame{index}         decoded frame
//	/{task_name}/{video_name}/frame{index}/aug{d}  augmented frame
//	/{task_name}/{epoch}/{iteration}/view          training batch
//
// The paper mounts this via FUSE; in this reproduction the filesystem is
// in-process (a sandbox cannot mount FUSE) but preserves the programming
// model: file descriptors, byte-stream reads, xattr metadata and directory
// listing. Content comes from a Provider — the SAND engine — which
// materializes a view on first access and may block until the object is
// ready, exactly like a FUSE read would.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Errors mirroring the POSIX error set the FUSE layer would surface.
var (
	// ErrNotExist corresponds to ENOENT.
	ErrNotExist = errors.New("vfs: no such view")
	// ErrBadFD corresponds to EBADF.
	ErrBadFD = errors.New("vfs: bad file descriptor")
	// ErrIsDir corresponds to EISDIR.
	ErrIsDir = errors.New("vfs: is a directory")
	// ErrNoXattr corresponds to ENODATA.
	ErrNoXattr = errors.New("vfs: no such attribute")
	// ErrInvalidPath corresponds to EINVAL.
	ErrInvalidPath = errors.New("vfs: invalid view path")
	// ErrUnavailable corresponds to EAGAIN: no backend can serve the view
	// right now (e.g. a fleet router found no live node). Retryable.
	ErrUnavailable = errors.New("vfs: no backend available")
)

// PathKind classifies a parsed view path.
type PathKind int

const (
	// KindVideo is /{task}/{video}.mp4.
	KindVideo PathKind = iota
	// KindFrame is /{task}/{video}/frame{index}.
	KindFrame
	// KindAugFrame is /{task}/{video}/frame{index}/aug{depth}.
	KindAugFrame
	// KindBatchView is /{task}/{epoch}/{iteration}/view.
	KindBatchView
)

func (k PathKind) String() string {
	switch k {
	case KindVideo:
		return "video"
	case KindFrame:
		return "frame"
	case KindAugFrame:
		return "aug_frame"
	case KindBatchView:
		return "batch_view"
	default:
		return fmt.Sprintf("PathKind(%d)", int(k))
	}
}

// Path is a parsed Table 1 view path.
type Path struct {
	Kind      PathKind
	Task      string
	Video     string
	Frame     int
	AugDepth  int
	Epoch     int
	Iteration int
	// Raw is the original path string.
	Raw string
}

// ParsePath parses a Table 1 path.
func ParsePath(p string) (Path, error) {
	out := Path{Raw: p, Frame: -1, AugDepth: -1, Epoch: -1, Iteration: -1}
	if !strings.HasPrefix(p, "/") {
		return out, fmt.Errorf("%w: %q is not absolute", ErrInvalidPath, p)
	}
	parts := strings.Split(strings.Trim(p, "/"), "/")
	if len(parts) < 2 || parts[0] == "" {
		return out, fmt.Errorf("%w: %q", ErrInvalidPath, p)
	}
	out.Task = parts[0]
	switch {
	case len(parts) == 2 && strings.HasSuffix(parts[1], ".mp4"):
		out.Kind = KindVideo
		out.Video = strings.TrimSuffix(parts[1], ".mp4")
		if out.Video == "" {
			return out, fmt.Errorf("%w: empty video name in %q", ErrInvalidPath, p)
		}
		return out, nil
	case len(parts) == 3 && strings.HasPrefix(parts[2], "frame"):
		idx, err := strconv.Atoi(strings.TrimPrefix(parts[2], "frame"))
		if err != nil || idx < 0 {
			return out, fmt.Errorf("%w: bad frame index in %q", ErrInvalidPath, p)
		}
		out.Kind = KindFrame
		out.Video = parts[1]
		out.Frame = idx
		return out, nil
	case len(parts) == 4 && strings.HasPrefix(parts[2], "frame") && strings.HasPrefix(parts[3], "aug"):
		idx, err := strconv.Atoi(strings.TrimPrefix(parts[2], "frame"))
		if err != nil || idx < 0 {
			return out, fmt.Errorf("%w: bad frame index in %q", ErrInvalidPath, p)
		}
		depth, err := strconv.Atoi(strings.TrimPrefix(parts[3], "aug"))
		if err != nil || depth < 0 {
			return out, fmt.Errorf("%w: bad aug depth in %q", ErrInvalidPath, p)
		}
		out.Kind = KindAugFrame
		out.Video = parts[1]
		out.Frame = idx
		out.AugDepth = depth
		return out, nil
	case len(parts) == 4 && parts[3] == "view":
		epoch, err1 := strconv.Atoi(parts[1])
		iter, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || epoch < 0 || iter < 0 {
			return out, fmt.Errorf("%w: bad epoch/iteration in %q", ErrInvalidPath, p)
		}
		out.Kind = KindBatchView
		out.Epoch = epoch
		out.Iteration = iter
		return out, nil
	}
	return out, fmt.Errorf("%w: %q matches no view scheme", ErrInvalidPath, p)
}

// String renders the canonical Table 1 path.
func (p Path) String() string {
	switch p.Kind {
	case KindVideo:
		return fmt.Sprintf("/%s/%s.mp4", p.Task, p.Video)
	case KindFrame:
		return fmt.Sprintf("/%s/%s/frame%d", p.Task, p.Video, p.Frame)
	case KindAugFrame:
		return fmt.Sprintf("/%s/%s/frame%d/aug%d", p.Task, p.Video, p.Frame, p.AugDepth)
	case KindBatchView:
		return fmt.Sprintf("/%s/%d/%d/view", p.Task, p.Epoch, p.Iteration)
	default:
		return p.Raw
	}
}

// BatchPath builds the canonical batch-view path.
func BatchPath(task string, epoch, iteration int) string {
	return fmt.Sprintf("/%s/%d/%d/view", task, epoch, iteration)
}

// View is a materialized view: the payload, its xattrs and — when the
// bytes are served by reference out of a cache — a pin keeping them
// cache-resident. Data must be treated as read-only. Release drops the
// pin (if any) and must be called when the holder is done with Data;
// it is idempotent, and the bytes themselves remain valid afterwards
// (the garbage collector owns them), only their cache residency lapses.
type View struct {
	Data    []byte
	Xattrs  map[string]string
	Pinned  bool // Data is a pinned cache-resident reference
	release func()
}

// NewView wraps an owned payload: no pin, Release is a no-op.
func NewView(data []byte, xattrs map[string]string) *View {
	return &View{Data: data, Xattrs: xattrs}
}

// NewPinnedView wraps a pinned cache reference; release runs exactly
// once, on the first Release call.
func NewPinnedView(data []byte, xattrs map[string]string, release func()) *View {
	return &View{Data: data, Xattrs: xattrs, Pinned: release != nil, release: release}
}

// Release drops the view's pin, if any. Safe on nil and idempotent.
func (v *View) Release() {
	if v == nil || v.release == nil {
		return
	}
	f := v.release
	v.release = nil
	f()
}

// PinnedProvider is an optional Provider extension for providers that
// can hand out cache-resident payloads by reference. The returned
// view's Release must be called by the consumer; until then the bytes
// are pinned against eviction.
type PinnedProvider interface {
	MaterializePinned(p Path) (*View, error)
}

// ViewOpener is an optional Mount extension: mounts that can hand a
// whole view out as a (possibly pinned) reference in one call, without
// going through the descriptor table. The zero-copy dataplane entry
// point.
type ViewOpener interface {
	OpenView(path string) (*View, error)
}

// Provider materializes view content on demand. Implementations may block
// in Materialize until the object is ready (the demand-feeding path).
type Provider interface {
	// Materialize returns the serialized view payload and its metadata
	// (exposed via Getxattr). It must return an error wrapping
	// ErrNotExist for unknown views.
	Materialize(p Path) ([]byte, map[string]string, error)
	// List returns the child entries of a directory path ("" or "/" for
	// the root).
	List(dir string) ([]string, error)
}

// Mount is the POSIX-shaped surface shared by the in-process FS and
// remote mounts (e.g. viewserver.Client). Training code written against
// Mount can swap a network-served view tree in for the local filesystem
// unchanged.
type Mount interface {
	Open(path string) (int, error)
	Read(fd int, buf []byte) (int, error)
	ReadAll(fd int) ([]byte, error)
	ReadAt(fd int, buf []byte, off int64) (int, error)
	Getxattr(fd int, name string) (string, error)
	Listxattr(fd int) ([]string, error)
	Size(fd int) (int64, error)
	Close(fd int) error
	Readdir(dir string) ([]string, error)
}

// FS is the in-process view filesystem. Safe for concurrent use.
type FS struct {
	provider Provider

	mu     sync.Mutex
	nextFD int
	open   map[int]*file
	stats  Stats
}

// Stats counts filesystem operations.
type Stats struct {
	Opens     int64
	Reads     int64
	BytesRead int64
	Getxattrs int64
	Closes    int64
	OpenFDs   int
}

type file struct {
	path   Path
	data   []byte
	xattrs map[string]string
	off    int
}

var _ Mount = (*FS)(nil)

// New creates a filesystem over the provider.
func New(p Provider) *FS {
	if p == nil {
		panic("vfs: nil provider")
	}
	return &FS{provider: p, nextFD: 3, open: map[int]*file{}}
}

// Open materializes the view at path and returns a file descriptor,
// mirroring open(2). It blocks until the provider has the object ready.
func (fs *FS) Open(path string) (int, error) {
	parsed, err := ParsePath(path)
	if err != nil {
		return -1, err
	}
	data, xattrs, err := fs.provider.Materialize(parsed)
	if err != nil {
		return -1, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fd := fs.nextFD
	fs.nextFD++
	fs.open[fd] = &file{path: parsed, data: data, xattrs: xattrs}
	fs.stats.Opens++
	fs.stats.OpenFDs = len(fs.open)
	return fd, nil
}

// OpenView materializes the view at path and returns it whole as a
// View, bypassing the descriptor table. When the provider implements
// PinnedProvider the payload is a pinned cache reference (zero-copy);
// otherwise the view owns its bytes. The caller must Release the view.
func (fs *FS) OpenView(path string) (*View, error) {
	parsed, err := ParsePath(path)
	if err != nil {
		return nil, err
	}
	var v *View
	if pp, ok := fs.provider.(PinnedProvider); ok {
		v, err = pp.MaterializePinned(parsed)
	} else {
		var data []byte
		var xattrs map[string]string
		data, xattrs, err = fs.provider.Materialize(parsed)
		if err == nil {
			v = NewView(data, xattrs)
		}
	}
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.stats.Opens++
	fs.stats.Reads++
	fs.stats.BytesRead += int64(len(v.Data))
	fs.mu.Unlock()
	return v, nil
}

var _ ViewOpener = (*FS)(nil)

// Read mirrors read(2): it fills buf from the descriptor's current offset
// and advances it, returning io.EOF at end of view.
func (fs *FS) Read(fd int, buf []byte) (int, error) {
	fs.mu.Lock()
	f, ok := fs.open[fd]
	if !ok {
		fs.mu.Unlock()
		return 0, ErrBadFD
	}
	if f.off >= len(f.data) {
		fs.mu.Unlock()
		return 0, io.EOF
	}
	n := copy(buf, f.data[f.off:])
	f.off += n
	fs.stats.Reads++
	fs.stats.BytesRead += int64(n)
	fs.mu.Unlock()
	return n, nil
}

// ReadAll reads the entire remaining view content.
func (fs *FS) ReadAll(fd int) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.open[fd]
	if !ok {
		return nil, ErrBadFD
	}
	out := make([]byte, len(f.data)-f.off)
	copy(out, f.data[f.off:])
	f.off = len(f.data)
	fs.stats.Reads++
	fs.stats.BytesRead += int64(len(out))
	return out, nil
}

// ReadAt mirrors pread(2): reads at an absolute offset without moving the
// descriptor offset.
func (fs *FS) ReadAt(fd int, buf []byte, off int64) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.open[fd]
	if !ok {
		return 0, ErrBadFD
	}
	if off < 0 || off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(buf, f.data[off:])
	fs.stats.Reads++
	fs.stats.BytesRead += int64(n)
	if n < len(buf) {
		return n, io.EOF
	}
	return n, nil
}

// Whence values for Seek, mirroring lseek(2).
const (
	// SeekSet positions relative to the start of the view.
	SeekSet = 0
	// SeekCur positions relative to the current offset.
	SeekCur = 1
	// SeekEnd positions relative to the end of the view.
	SeekEnd = 2
)

// Seek mirrors lseek(2): it repositions the descriptor's offset and
// returns the new absolute offset. Seeking past the end is allowed (reads
// there return io.EOF); seeking before the start is EINVAL.
func (fs *FS) Seek(fd int, offset int64, whence int) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.open[fd]
	if !ok {
		return 0, ErrBadFD
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = int64(f.off)
	case SeekEnd:
		base = int64(len(f.data))
	default:
		return 0, fmt.Errorf("%w: whence %d", ErrInvalidPath, whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrInvalidPath, pos)
	}
	f.off = int(pos)
	return pos, nil
}

// Getxattr mirrors getxattr(2): returns the named metadata attribute of an
// open view (e.g. frame timestamps, labels, geometry).
func (fs *FS) Getxattr(fd int, name string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.open[fd]
	if !ok {
		return "", ErrBadFD
	}
	fs.stats.Getxattrs++
	v, ok := f.xattrs[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNoXattr, name)
	}
	return v, nil
}

// Listxattr returns all attribute names of an open view.
func (fs *FS) Listxattr(fd int) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.open[fd]
	if !ok {
		return nil, ErrBadFD
	}
	names := make([]string, 0, len(f.xattrs))
	for k := range f.xattrs {
		names = append(names, k)
	}
	return names, nil
}

// Size returns the byte size of an open view.
func (fs *FS) Size(fd int) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.open[fd]
	if !ok {
		return 0, ErrBadFD
	}
	return int64(len(f.data)), nil
}

// Close mirrors close(2) and releases the view's memory.
func (fs *FS) Close(fd int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.open[fd]; !ok {
		return ErrBadFD
	}
	delete(fs.open, fd)
	fs.stats.Closes++
	fs.stats.OpenFDs = len(fs.open)
	return nil
}

// Readdir lists directory entries via the provider.
func (fs *FS) Readdir(dir string) ([]string, error) {
	return fs.provider.List(dir)
}

// Stats returns a snapshot of operation counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st := fs.stats
	st.OpenFDs = len(fs.open)
	return st
}
