package vfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"
)

// fakeProvider serves canned content for tests.
type fakeProvider struct {
	mu     sync.Mutex
	calls  int
	views  map[string][]byte
	xattrs map[string]map[string]string
}

func newFakeProvider() *fakeProvider {
	return &fakeProvider{
		views: map[string][]byte{
			"/train/v1.mp4":         []byte("encoded-video-bytes"),
			"/train/v1/frame3":      []byte("frame-3-pixels"),
			"/train/v1/frame3/aug1": []byte("aug-frame-pixels"),
			"/train/0/5/view":       []byte("batch-epoch0-iter5"),
		},
		xattrs: map[string]map[string]string{
			"/train/0/5/view": {"timestamps": "0,33,66", "labels": "archery"},
		},
	}
}

func (p *fakeProvider) Materialize(path Path) ([]byte, map[string]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	data, ok := p.views[path.String()]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotExist, path.String())
	}
	return data, p.xattrs[path.String()], nil
}

func (p *fakeProvider) List(dir string) ([]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for k := range p.views {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

func TestParsePathTable1(t *testing.T) {
	cases := []struct {
		in   string
		kind PathKind
	}{
		{"/train/video_0001.mp4", KindVideo},
		{"/train/video_0001/frame12", KindFrame},
		{"/train/video_0001/frame12/aug2", KindAugFrame},
		{"/train/3/128/view", KindBatchView},
	}
	for _, c := range cases {
		p, err := ParsePath(c.in)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", c.in, err)
		}
		if p.Kind != c.kind {
			t.Fatalf("ParsePath(%q).Kind = %v, want %v", c.in, p.Kind, c.kind)
		}
		if p.String() != c.in {
			t.Fatalf("round trip %q -> %q", c.in, p.String())
		}
	}
	p, _ := ParsePath("/train/v/frame12/aug2")
	if p.Task != "train" || p.Video != "v" || p.Frame != 12 || p.AugDepth != 2 {
		t.Fatalf("fields wrong: %+v", p)
	}
	b, _ := ParsePath("/train/3/128/view")
	if b.Epoch != 3 || b.Iteration != 128 {
		t.Fatalf("batch fields wrong: %+v", b)
	}
}

func TestParsePathErrors(t *testing.T) {
	bad := []string{
		"relative/path",
		"/",
		"/onlytask",
		"/t/v/framex",
		"/t/v/frame-1",
		"/t/v/frame1/augx",
		"/t/x/y/view",
		"/t/1/-2/view",
		"/t/v/frame1/aug1/extra",
		"/t/.mp4",
	}
	for _, in := range bad {
		if _, err := ParsePath(in); !errors.Is(err, ErrInvalidPath) {
			t.Errorf("ParsePath(%q) = %v, want ErrInvalidPath", in, err)
		}
	}
}

func TestBatchPath(t *testing.T) {
	if got := BatchPath("train", 2, 17); got != "/train/2/17/view" {
		t.Fatalf("BatchPath = %q", got)
	}
}

func TestOpenReadClose(t *testing.T) {
	fs := New(newFakeProvider())
	fd, err := fs.Open("/train/0/5/view")
	if err != nil {
		t.Fatal(err)
	}
	if fd < 3 {
		t.Fatalf("fd %d collides with stdio", fd)
	}
	buf := make([]byte, 5)
	n, err := fs.Read(fd, buf)
	if err != nil || n != 5 || string(buf) != "batch" {
		t.Fatalf("Read = %d %v %q", n, err, buf[:n])
	}
	rest, err := fs.ReadAll(fd)
	if err != nil || string(rest) != "-epoch0-iter5" {
		t.Fatalf("ReadAll = %q %v", rest, err)
	}
	if _, err := fs.Read(fd, buf); err != io.EOF {
		t.Fatalf("Read at EOF = %v", err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Fatalf("double close = %v", err)
	}
	st := fs.Stats()
	if st.Opens != 1 || st.Closes != 1 || st.OpenFDs != 0 || st.BytesRead != 18 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOpenMissingView(t *testing.T) {
	fs := New(newFakeProvider())
	if _, err := fs.Open("/train/ghost.mp4"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing view open = %v", err)
	}
	if _, err := fs.Open("not-a-path"); !errors.Is(err, ErrInvalidPath) {
		t.Fatalf("invalid path open = %v", err)
	}
}

func TestReadBadFD(t *testing.T) {
	fs := New(newFakeProvider())
	if _, err := fs.Read(99, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Fatal("Read on bad fd")
	}
	if _, err := fs.ReadAll(99); !errors.Is(err, ErrBadFD) {
		t.Fatal("ReadAll on bad fd")
	}
	if _, err := fs.ReadAt(99, make([]byte, 1), 0); !errors.Is(err, ErrBadFD) {
		t.Fatal("ReadAt on bad fd")
	}
	if _, err := fs.Getxattr(99, "x"); !errors.Is(err, ErrBadFD) {
		t.Fatal("Getxattr on bad fd")
	}
	if _, err := fs.Size(99); !errors.Is(err, ErrBadFD) {
		t.Fatal("Size on bad fd")
	}
	if _, err := fs.Listxattr(99); !errors.Is(err, ErrBadFD) {
		t.Fatal("Listxattr on bad fd")
	}
}

func TestReadAt(t *testing.T) {
	fs := New(newFakeProvider())
	fd, _ := fs.Open("/train/v1.mp4") // "encoded-video-bytes"
	buf := make([]byte, 5)
	n, err := fs.ReadAt(fd, buf, 8)
	if err != nil || n != 5 || string(buf) != "video" {
		t.Fatalf("ReadAt = %d %v %q", n, err, buf[:n])
	}
	// Offset-preserving: sequential read still starts at 0.
	n, _ = fs.Read(fd, buf)
	if string(buf[:n]) != "encod" {
		t.Fatalf("ReadAt moved the offset: %q", buf[:n])
	}
	if _, err := fs.ReadAt(fd, buf, 1000); err != io.EOF {
		t.Fatalf("ReadAt past end = %v", err)
	}
	// Short read at the tail returns EOF alongside data.
	n, err = fs.ReadAt(fd, buf, int64(len("encoded-video-bytes"))-2)
	if n != 2 || err != io.EOF {
		t.Fatalf("tail ReadAt = %d %v", n, err)
	}
}

func TestGetxattr(t *testing.T) {
	fs := New(newFakeProvider())
	fd, _ := fs.Open("/train/0/5/view")
	ts, err := fs.Getxattr(fd, "timestamps")
	if err != nil || ts != "0,33,66" {
		t.Fatalf("Getxattr = %q %v", ts, err)
	}
	if _, err := fs.Getxattr(fd, "nope"); !errors.Is(err, ErrNoXattr) {
		t.Fatalf("missing xattr = %v", err)
	}
	names, err := fs.Listxattr(fd)
	if err != nil || len(names) != 2 {
		t.Fatalf("Listxattr = %v %v", names, err)
	}
}

func TestSize(t *testing.T) {
	fs := New(newFakeProvider())
	fd, _ := fs.Open("/train/v1/frame3")
	sz, err := fs.Size(fd)
	if err != nil || sz != int64(len("frame-3-pixels")) {
		t.Fatalf("Size = %d %v", sz, err)
	}
}

func TestReaddir(t *testing.T) {
	fs := New(newFakeProvider())
	entries, err := fs.Readdir("/")
	if err != nil || len(entries) != 4 {
		t.Fatalf("Readdir = %v %v", entries, err)
	}
}

func TestConcurrentOpens(t *testing.T) {
	fs := New(newFakeProvider())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fd, err := fs.Open("/train/v1/frame3")
				if err != nil {
					t.Errorf("Open: %v", err)
					return
				}
				data, err := fs.ReadAll(fd)
				if err != nil || string(data) != "frame-3-pixels" {
					t.Errorf("ReadAll: %q %v", data, err)
					return
				}
				if err := fs.Close(fd); err != nil {
					t.Errorf("Close: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fs.Stats().OpenFDs != 0 {
		t.Fatal("leaked fds")
	}
}

func TestFDsAreUnique(t *testing.T) {
	fs := New(newFakeProvider())
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		fd, err := fs.Open("/train/v1.mp4")
		if err != nil {
			t.Fatal(err)
		}
		if seen[fd] {
			t.Fatalf("fd %d reused while open", fd)
		}
		seen[fd] = true
	}
}

func TestPathKindString(t *testing.T) {
	if KindVideo.String() != "video" || KindBatchView.String() != "batch_view" {
		t.Fatal("kind strings wrong")
	}
}

func TestSeek(t *testing.T) {
	fs := New(newFakeProvider())
	fd, _ := fs.Open("/train/v1.mp4") // "encoded-video-bytes" (19 bytes)
	pos, err := fs.Seek(fd, 8, SeekSet)
	if err != nil || pos != 8 {
		t.Fatalf("SeekSet = %d, %v", pos, err)
	}
	buf := make([]byte, 5)
	n, _ := fs.Read(fd, buf)
	if string(buf[:n]) != "video" {
		t.Fatalf("read after seek = %q", buf[:n])
	}
	// SeekCur from 13 by -5 lands back at 8.
	pos, err = fs.Seek(fd, -5, SeekCur)
	if err != nil || pos != 8 {
		t.Fatalf("SeekCur = %d, %v", pos, err)
	}
	// SeekEnd -5 = len-5.
	pos, err = fs.Seek(fd, -5, SeekEnd)
	if err != nil || pos != int64(len("encoded-video-bytes"))-5 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}
	n, _ = fs.Read(fd, buf)
	if string(buf[:n]) != "bytes" {
		t.Fatalf("tail read = %q", buf[:n])
	}
	// Past-the-end is allowed; the next read is EOF.
	if _, err := fs.Seek(fd, 100, SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(fd, buf); err != io.EOF {
		t.Fatalf("read past end = %v", err)
	}
	// Invalid cases.
	if _, err := fs.Seek(fd, -1, SeekSet); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := fs.Seek(fd, 0, 9); err == nil {
		t.Fatal("bad whence accepted")
	}
	if _, err := fs.Seek(999, 0, SeekSet); !errors.Is(err, ErrBadFD) {
		t.Fatal("seek on bad fd")
	}
}
