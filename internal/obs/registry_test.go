package obs

import (
	"strings"
	"testing"
)

func TestRegistryPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("core.gop.hits").Add(42)
	r.Gauge("storage.pressure", func() float64 { return 0.5 })
	r.SnapshotFunc("sched", func() map[string]int64 { return map[string]int64{"completed": 7} })
	h := r.Histogram("core.view_read_ns")
	for i := 0; i < 100; i++ {
		h.Observe(1e6) // 1ms
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sand_core_gop_hits 42",
		"# TYPE sand_storage_pressure gauge",
		"sand_storage_pressure 0.5",
		"sand_sched_completed 7",
		"# TYPE sand_core_view_read_seconds summary",
		`sand_core_view_read_seconds{quantile="0.5"}`,
		`sand_core_view_read_seconds{quantile="0.99"}`,
		"sand_core_view_read_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryTextDump(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(3)
	r.Histogram("lat_ns").Observe(2e6)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a.b", "3", "lat.p50", "lat.count"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("g", func() float64 { return 1 })
	r.Histogram("h").Observe(1)
	r.SnapshotFunc("p", func() map[string]int64 { return nil })
	if r.Trace() != nil {
		t.Fatal("nil registry tracer must be nil")
	}
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry gathered %v", got)
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCounterIdentity(t *testing.T) {
	r := New()
	a := r.Counter("same")
	b := r.Counter("same")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	a.Add(2)
	if b.Get() != 2 {
		t.Fatal("counter not shared")
	}
}

func TestPromName(t *testing.T) {
	if got := promName("core.view_read-latency"); got != "sand_core_view_read_latency" {
		t.Fatalf("promName = %q", got)
	}
}
