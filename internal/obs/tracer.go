package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one recorded trace event. TS and Dur are nanoseconds relative
// to the tracer's epoch; Dur is zero for instant events.
type Event struct {
	TS    int64
	Dur   int64
	Cat   string // subsystem: "sched", "storage", "core", "viewserver"
	Name  string // event kind within the subsystem: "enqueue", "frame", ...
	Arg   string // free-form detail ("" = none)
	Trace TraceID
}

// Kind returns the event's taxonomy key, "cat.name" — the identifier
// OBSERVABILITY.md documents and golden tests assert on.
func (e Event) Kind() string { return e.Cat + "." + e.Name }

// tracerShards spreads writers across independent rings so concurrent
// hot-path emitters rarely contend on the same mutex.
const tracerShards = 8

// DefaultTraceCapacity is the total ring capacity (events) used when a
// Tracer is created with capacity <= 0.
const DefaultTraceCapacity = 1 << 16

// Tracer records events into sharded ring buffers. Recording is
// lock-light: a writer claims a shard round-robin with one atomic add and
// holds that shard's mutex only for the slot write. Old events are
// overwritten once a shard's ring wraps; export merges the shards and
// sorts by timestamp.
//
// A disabled Tracer (the initial state) costs one atomic load per
// instrumented call site and holds no buffer memory until Enable.
type Tracer struct {
	enabled  atomic.Bool
	rr       atomic.Uint64
	epoch    time.Time
	perShard int
	shards   [tracerShards]tracerShard
}

type tracerShard struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // events ever written; slot = (next-1) % len(buf)
}

// NewTracer creates a disabled tracer holding up to capacity events
// (rounded up to a multiple of the shard count; <= 0 means
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	per := (capacity + tracerShards - 1) / tracerShards
	return &Tracer{epoch: time.Now(), perShard: per}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Enable allocates the ring buffers (on first use) and starts recording.
func (t *Tracer) Enable() {
	if t == nil {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if sh.buf == nil {
			sh.buf = make([]Event, t.perShard)
		}
		sh.mu.Unlock()
	}
	t.enabled.Store(true)
}

// Disable stops recording; buffered events remain exportable.
func (t *Tracer) Disable() {
	if t == nil {
		return
	}
	t.enabled.Store(false)
}

// Reset discards all buffered events and restarts the time epoch.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.next = 0
		sh.mu.Unlock()
	}
	t.epoch = time.Now()
}

// Now returns nanoseconds since the tracer epoch — the timestamp base for
// Span start times. Returns 0 on a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Instant records a zero-duration event at the current time.
func (t *Tracer) Instant(cat, name string, tr TraceID, arg string) {
	if !t.Enabled() {
		return
	}
	t.emit(Event{TS: t.Now(), Cat: cat, Name: name, Arg: arg, Trace: tr})
}

// InstantAt records a zero-duration event at an explicit timestamp
// (nanoseconds since the tracer epoch). Virtual-time emitters — the
// scenario harness runs on a simulated clock — use this so their flight
// records are deterministic instead of wall-clock-stamped.
func (t *Tracer) InstantAt(cat, name string, tr TraceID, tsNS int64, arg string) {
	if !t.Enabled() {
		return
	}
	t.emit(Event{TS: tsNS, Cat: cat, Name: name, Arg: arg, Trace: tr})
}

// Span records a completed span that began at startNS (a prior Now
// value) and ends now.
func (t *Tracer) Span(cat, name string, tr TraceID, startNS int64, arg string) {
	if !t.Enabled() {
		return
	}
	now := t.Now()
	dur := now - startNS
	if dur < 0 {
		dur = 0
	}
	t.emit(Event{TS: startNS, Dur: dur, Cat: cat, Name: name, Arg: arg, Trace: tr})
}

func (t *Tracer) emit(e Event) {
	sh := &t.shards[t.rr.Add(1)&(tracerShards-1)]
	sh.mu.Lock()
	if sh.buf != nil {
		sh.buf[sh.next%uint64(len(sh.buf))] = e
		sh.next++
	}
	sh.mu.Unlock()
}

// Len returns the number of events currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if c := int(sh.next); c < len(sh.buf) {
			n += c
		} else {
			n += len(sh.buf)
		}
		sh.mu.Unlock()
	}
	return n
}

// Events returns a snapshot of all buffered events sorted by start time.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.buf))
		if n == 0 {
			sh.mu.Unlock()
			continue
		}
		count := sh.next
		if count > n {
			count = n
		}
		// Oldest first: the ring holds events next-count .. next-1.
		for j := sh.next - count; j < sh.next; j++ {
			out = append(out, sh.buf[j%n])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// chromeEvent is one entry of the Chrome trace_event JSON array
// (chrome://tracing, Perfetto, speedscope all read this format).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event container object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the buffered events as Chrome trace_event
// JSON. Each subsystem (event Cat) renders as its own track; spans are
// complete ("X") events, instants are "i" events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	lanes := map[string]int{}
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		tid, ok := lanes[e.Cat]
		if !ok {
			tid = len(lanes) + 1
			lanes[e.Cat] = tid
		}
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			TS:   float64(e.TS) / 1e3,
			PID:  1,
			TID:  tid,
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		if e.Trace != 0 || e.Arg != "" {
			ce.Args = map[string]any{}
			if e.Trace != 0 {
				ce.Args["trace"] = uint64(e.Trace)
			}
			if e.Arg != "" {
				ce.Args["detail"] = e.Arg
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
