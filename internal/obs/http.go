package obs

import (
	"fmt"
	"net"
	"net/http"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics            Prometheus text exposition
//	/metrics.json       structured samples (full histogram buckets) for
//	                    fleet collectors
//	/debug/trace        Chrome trace_event JSON of the buffered events
//	/debug/trace/start  enable tracing (any method)
//	/debug/trace/stop   disable tracing; events stay exportable
//	/                   plain-text index of the above
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Trace().WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/trace/start", func(w http.ResponseWriter, _ *http.Request) {
		r.Trace().Enable()
		fmt.Fprintln(w, "tracing enabled")
	})
	mux.HandleFunc("/debug/trace/stop", func(w http.ResponseWriter, _ *http.Request) {
		r.Trace().Disable()
		fmt.Fprintln(w, "tracing disabled")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "sand observability\n  /metrics\n  /metrics.json\n  /debug/trace\n  /debug/trace/start\n  /debug/trace/stop\n")
	})
	return mux
}

// StartServer serves the registry's Handler on addr in a background
// goroutine, returning the bound address (useful with ":0") and a
// shutdown function.
func (r *Registry) StartServer(addr string) (net.Addr, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), srv.Close, nil
}
