package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// flightMinGap is the minimum wall-clock gap between automatic dumps:
// one breach storm produces one trace, not hundreds of identical files.
const flightMinGap = 5 * time.Second

// FlightRecorder turns SLO breaches into automatic Chrome-trace dumps.
// The trace ring always holds the recent past; when a subsystem reports
// a breach (scheduler admission control engaging, an eviction storm in
// the store), the recorder writes the ring to a numbered trace file in
// its directory — the forensic record arrives without anyone having to
// reproduce the incident with tracing on.
//
// Creating a recorder enables the tracer: a flight recorder with an
// empty ring records nothing. Dumps are rate-limited to one per
// flightMinGap so a sustained breach cannot fill the disk. All methods
// tolerate a nil receiver.
type FlightRecorder struct {
	tr  *Tracer
	dir string

	mu     sync.Mutex
	last   time.Time
	seq    int
	dumps  int64
	capped int64 // breaches swallowed by the rate limit
}

// NewFlightRecorder creates the dump directory, enables tracing on tr,
// and returns the recorder. A nil tracer or empty dir returns nil (the
// nil recorder is a valid no-op receiver).
func NewFlightRecorder(tr *Tracer, dir string) (*FlightRecorder, error) {
	if tr == nil || dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight dir: %w", err)
	}
	tr.Enable()
	return &FlightRecorder{tr: tr, dir: dir}, nil
}

// Breach records one SLO breach: the reason lands in the trace ring as
// an instant event (so it appears inside the dump it triggers) and the
// ring is written to <dir>/flight-NNNN.trace.json. Returns the written
// path, or "" when the dump was rate-limited or the recorder is nil.
func (f *FlightRecorder) Breach(reason string) string {
	if f == nil {
		return ""
	}
	f.tr.Instant("obs", "slo_breach", 0, reason)
	f.mu.Lock()
	if !f.last.IsZero() && time.Since(f.last) < flightMinGap {
		f.capped++
		f.mu.Unlock()
		return ""
	}
	f.last = time.Now()
	f.seq++
	seq := f.seq
	f.mu.Unlock()

	path := filepath.Join(f.dir, fmt.Sprintf("flight-%04d.trace.json", seq))
	file, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer file.Close()
	if err := f.tr.WriteChromeTrace(file); err != nil {
		return ""
	}
	f.mu.Lock()
	f.dumps++
	f.mu.Unlock()
	return path
}

// Dumps returns how many trace files the recorder has written.
func (f *FlightRecorder) Dumps() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}
