package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Wire export of gathered metrics. A fleet collector pulls every node's
// registry as structured samples (not the lossy Prometheus text), so
// histograms arrive with their full bucket vectors and merge exactly via
// Histogram.Merge on the collector side. The format is plain JSON: small
// (a few KB per node), debuggable with curl, and schema-stable because it
// serializes the exported Sample/HistSnapshot types directly.

// wireSample is the JSON shape of one Sample. Histogram bucket vectors
// are encoded sparsely (index→count pairs) — most of the 1024 buckets of
// a latency histogram are empty.
type wireSample struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	Value float64   `json:"value,omitempty"`
	Hist  *wireHist `json:"hist,omitempty"`
}

type wireHist struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets"` // flat [index, count, index, count, ...]
}

// MarshalSamples encodes gathered samples for the wire.
func MarshalSamples(samples []Sample) ([]byte, error) {
	out := make([]wireSample, 0, len(samples))
	for _, s := range samples {
		ws := wireSample{Name: s.Name, Kind: s.Kind, Value: s.Value}
		if s.Hist != nil {
			wh := &wireHist{Count: s.Hist.Count, Sum: s.Hist.Sum, Min: s.Hist.Min, Max: s.Hist.Max}
			for i, n := range s.Hist.Counts {
				if n != 0 {
					wh.Buckets = append(wh.Buckets, int64(i), n)
				}
			}
			ws.Hist = wh
		}
		out = append(out, ws)
	}
	return json.Marshal(out)
}

// UnmarshalSamples decodes a MarshalSamples payload.
func UnmarshalSamples(data []byte) ([]Sample, error) {
	var in []wireSample
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("obs: decode samples: %w", err)
	}
	out := make([]Sample, 0, len(in))
	for _, ws := range in {
		s := Sample{Name: ws.Name, Kind: ws.Kind, Value: ws.Value}
		if ws.Hist != nil {
			if len(ws.Hist.Buckets)%2 != 0 {
				return nil, fmt.Errorf("obs: decode samples: odd bucket vector for %q", ws.Name)
			}
			hs := &HistSnapshot{Count: ws.Hist.Count, Sum: ws.Hist.Sum, Min: ws.Hist.Min, Max: ws.Hist.Max}
			for i := 0; i < len(ws.Hist.Buckets); i += 2 {
				idx := ws.Hist.Buckets[i]
				if idx < 0 || idx >= histBuckets {
					return nil, fmt.Errorf("obs: decode samples: bucket index %d out of range for %q", idx, ws.Name)
				}
				hs.Counts[idx] = ws.Hist.Buckets[i+1]
			}
			s.Hist = hs
		}
		out = append(out, s)
	}
	return out, nil
}

// WriteJSON renders the registry's gathered samples as the wire format
// (the /metrics.json endpoint a fleet collector scrapes).
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := MarshalSamples(r.Gather())
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// HistogramFromSnapshot reconstructs a live histogram holding exactly the
// snapshot's observations, so remote snapshots re-enter the Merge
// algebra: a collector rebuilds each node's histogram and folds them into
// one fleet histogram with Histogram.Merge.
func HistogramFromSnapshot(s *HistSnapshot) *Histogram {
	h := NewHistogram()
	if s == nil || s.Count == 0 {
		return h
	}
	for i, n := range s.Counts {
		if n != 0 {
			h.counts[i].Store(n)
		}
	}
	h.count.Store(s.Count)
	h.sum.Store(s.Sum)
	h.min.Store(s.Min)
	h.max.Store(s.Max)
	return h
}

// PromName sanitizes a dotted metric name into the exposed Prometheus
// identifier (e.g. "viewserver.request_ns" → "sand_viewserver_request_ns").
func PromName(name string) string { return promName(name) }
