package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < histSub; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for v := 0; v < histSub; v++ {
		if s.Counts[v] != 1 {
			t.Fatalf("bucket %d: got %d, want 1", v, s.Counts[v])
		}
	}
	if s.Min != 0 || s.Max != histSub-1 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
}

func TestHistogramBucketBoundsRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it.
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 63, 64, 100, 1023, 1024, 1 << 20, (1 << 40) + 12345, math.MaxInt64}
	for _, v := range vals {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		if hi == math.MaxInt64 {
			// The top octave clamps: closed upper bound.
			if v < lo || v > hi {
				t.Fatalf("v=%d idx=%d bounds [%d,%d]", v, idx, lo, hi)
			}
			continue
		}
		if v < lo || v >= hi {
			t.Fatalf("v=%d landed in bucket %d with bounds [%d,%d)", v, idx, lo, hi)
		}
	}
	// Buckets must tile the range contiguously up to the top reachable
	// bucket (959: positive int64 values have at most 63 bits).
	for i := 0; i < 959; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, hi, i+1, lo)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var vals []int64
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 1e6) // latency-shaped distribution
		vals = append(vals, v)
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count=%d want %d", s.Count, len(vals))
	}
	exact := func(q float64) float64 {
		cp := append([]int64(nil), vals...)
		// simple selection via sort
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
				cp[j], cp[j-1] = cp[j-1], cp[j]
			}
		}
		idx := int(q*float64(len(cp))) - 1
		if idx < 0 {
			idx = 0
		}
		return float64(cp[idx])
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, want := s.Quantile(q), exact(q)
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 0.07 {
			t.Fatalf("q=%.2f: got %.0f want %.0f (rel err %.3f > 0.07)", q, got, want, rel)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 1000; i++ {
		a.Observe(i * 7)
		b.Observe(i * 13)
	}
	m := NewHistogram()
	m.Merge(a)
	m.Merge(b)
	if m.Count() != a.Count()+b.Count() {
		t.Fatalf("merged count %d != %d", m.Count(), a.Count()+b.Count())
	}
	sm, sa, sb := m.Snapshot(), a.Snapshot(), b.Snapshot()
	if sm.Sum != sa.Sum+sb.Sum {
		t.Fatalf("merged sum %d != %d", sm.Sum, sa.Sum+sb.Sum)
	}
	if sm.Min != 0 || sm.Max != 999*13 {
		t.Fatalf("merged min/max = %d/%d", sm.Min, sm.Max)
	}
	for i := range sm.Counts {
		if sm.Counts[i] != sa.Counts[i]+sb.Counts[i] {
			t.Fatalf("bucket %d: merged %d != %d+%d", i, sm.Counts[i], sa.Counts[i], sb.Counts[i])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(int64(rng.Intn(1 << 20)))
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count=%d want %d", s.Count, workers*per)
	}
	var sum int64
	for _, n := range s.Counts {
		sum += n
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.Merge(NewHistogram())
	if h.Count() != 0 {
		t.Fatal("nil histogram should count 0")
	}
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 {
		t.Fatal("nil snapshot quantile should be 0")
	}
}
