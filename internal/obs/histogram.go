package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: HDR-style log-linear. Values below histSub are
// recorded exactly (one bucket per value); above, each power-of-two range
// splits into histSub linear sub-buckets, bounding relative error at
// 1/histSub (6.25%). 1024 buckets cover the full non-negative int64
// range, so two histograms always merge bucket-for-bucket.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // 16 sub-buckets per octave
	histBuckets = 1024
)

// Histogram is a fixed-bucket, lock-free latency histogram. Observations
// are int64 values (by convention nanoseconds for "*_ns" metrics); all
// methods are safe for concurrent use and tolerate a nil receiver.
// Histograms with the same layout (all of them) merge exactly.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	shift := uint(exp - histSubBits)
	idx := (exp-histSubBits+1)<<histSubBits + int((uint64(v)>>shift)&(histSub-1))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketBounds returns the half-open value range [lo, hi) of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSub {
		return int64(idx), int64(idx) + 1
	}
	block := idx >> histSubBits // >= 1
	exp := uint(block + histSubBits - 1)
	sub := int64(idx & (histSub - 1))
	width := int64(1) << (exp - histSubBits)
	lo = (histSub + sub) * width
	hi = lo + width
	if hi < lo { // overflow in the top octave
		hi = math.MaxInt64
	}
	return lo, hi
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Merge adds o's observations into h (o is unchanged). Safe under
// concurrent Observe on either side; the merged view is a consistent
// superset of both histograms' pasts.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if m := o.min.Load(); m != math.MaxInt64 {
		for {
			cur := h.min.Load()
			if m >= cur || h.min.CompareAndSwap(cur, m) {
				break
			}
		}
	}
	if m := o.max.Load(); m != 0 {
		for {
			cur := h.max.Load()
			if m <= cur || h.max.CompareAndSwap(cur, m) {
				break
			}
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures a point-in-time copy for rendering and quantiles.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	if s.Min == math.MaxInt64 {
		s.Min = 0
	}
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is an immutable histogram copy.
type HistSnapshot struct {
	Counts     [histBuckets]int64
	Count, Sum int64
	Min, Max   int64
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]): the
// midpoint of the bucket holding the target rank, clamped to the observed
// min/max. Estimation error is bounded by the bucket width (<= 6.25%
// relative for values >= 16).
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range s.Counts {
		cum += n
		if cum >= target {
			lo, hi := bucketBounds(i)
			v := float64(lo)/2 + float64(hi)/2 // no int64 overflow in the top octave
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
	}
	return float64(s.Max)
}
