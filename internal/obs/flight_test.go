package obs

import (
	"os"
	"strings"
	"testing"
)

func TestFlightRecorderDumpsOnBreach(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(0)
	fr, err := NewFlightRecorder(tr, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled() {
		t.Fatal("creating a flight recorder must enable the tracer")
	}
	tr.Instant("test", "before", 0, "context that should appear in the dump")

	path := fr.Breach("demand p99 over SLO")
	if path == "" {
		t.Fatal("first breach did not dump")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "slo_breach") {
		t.Fatal("dump missing the breach event")
	}
	if !strings.Contains(string(data), "before") {
		t.Fatal("dump missing pre-breach ring context")
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", fr.Dumps())
	}

	// A second breach inside the cooldown is swallowed.
	if p := fr.Breach("again"); p != "" {
		t.Fatalf("rate-limited breach dumped to %s", p)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps after rate-limited breach = %d, want 1", fr.Dumps())
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	if p := fr.Breach("x"); p != "" {
		t.Fatal("nil recorder dumped")
	}
	if fr.Dumps() != 0 {
		t.Fatal("nil recorder counted dumps")
	}
	if fr2, err := NewFlightRecorder(nil, t.TempDir()); err != nil || fr2 != nil {
		t.Fatalf("nil tracer: recorder=%v err=%v, want nil/nil", fr2, err)
	}
	if fr3, err := NewFlightRecorder(NewTracer(0), ""); err != nil || fr3 != nil {
		t.Fatalf("empty dir: recorder=%v err=%v, want nil/nil", fr3, err)
	}
}
