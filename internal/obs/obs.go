// Package obs is SAND's unified observability layer: a low-overhead
// structured event tracer (sharded ring buffers, Chrome trace_event JSON
// export), HDR-style fixed-bucket latency histograms (lock-free,
// mergeable), and a pull-based metrics registry that exposes counters,
// gauges and histograms both as a Prometheus-style text page and as a
// human-readable dump.
//
// Every load-bearing subsystem — the scheduler, the object store, the
// materialization engine and the view server — reports through one
// *Registry. A Registry is always safe to use: every method (including
// those of the Tracer, Counter and Histogram it hands out) tolerates a
// nil receiver, so instrumented code never branches on "is observability
// configured". With tracing disabled (the default) the cost of an
// instrumented call site is a single atomic load.
//
// Trace events carry a TraceID so one logical operation — a view open
// fanning out decode → augment → batch across worker goroutines — can be
// followed end to end in the exported trace.
package obs

import "sync/atomic"

// TraceID identifies one logical operation across goroutines and
// subsystems (a view open, a pre-materialization). Zero means "no
// context".
type TraceID uint64

var traceIDs atomic.Uint64

// NextTraceID returns a fresh process-unique trace context ID.
func NextTraceID() TraceID {
	return TraceID(traceIDs.Add(1))
}

var defaultRegistry = New()

// Default returns the process-wide registry. Subsystems constructed
// without an explicit Registry report here, so binaries like sandbench
// can enable tracing for code paths deep inside experiment harnesses.
func Default() *Registry { return defaultRegistry }
