package obs

import (
	"bytes"
	"testing"
)

// TestExportRoundTrip: Gather → MarshalSamples → UnmarshalSamples must
// preserve every sample, and HistogramFromSnapshot must re-enter the
// Merge algebra with exact bucket counts — this is the contract the
// fleet collector's cross-process histogram merging stands on.
func TestExportRoundTrip(t *testing.T) {
	r := New()
	r.Counter("reqs").Add(42)
	h := r.Histogram("req_ns")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	r.Gauge("depth", func() float64 { return 3.5 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSamples(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	want := r.Gather()
	if len(got) != len(want) {
		t.Fatalf("round trip changed sample count: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Kind != want[i].Kind || got[i].Value != want[i].Value {
			t.Fatalf("sample %d: %+v != %+v", i, got[i], want[i])
		}
		if (got[i].Hist == nil) != (want[i].Hist == nil) {
			t.Fatalf("sample %d lost its histogram", i)
		}
		if got[i].Hist != nil && *got[i].Hist != *want[i].Hist {
			t.Fatalf("sample %d histogram changed in transit", i)
		}
	}

	// The restored histogram must behave identically under Merge.
	var snap *HistSnapshot
	for _, s := range got {
		if s.Name == "req_ns" {
			snap = s.Hist
		}
	}
	restored := HistogramFromSnapshot(snap)
	if restored.Count() != 1000 {
		t.Fatalf("restored count = %d", restored.Count())
	}
	m := NewHistogram()
	m.Merge(restored)
	m.Merge(restored)
	ms, hs := m.Snapshot(), h.Snapshot()
	if ms.Count != 2*hs.Count || ms.Sum != 2*hs.Sum {
		t.Fatalf("restored histogram broke Merge: %+v vs %+v", ms, hs)
	}
	if ms.Quantile(0.5) != hs.Quantile(0.5) {
		t.Fatalf("doubling every bucket moved the median: %g vs %g", ms.Quantile(0.5), hs.Quantile(0.5))
	}
}

func TestUnmarshalSamplesRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSamples([]byte("[not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	// Bucket index out of range.
	bad := []byte(`[{"name":"x_ns","kind":"histogram","hist":{"count":1,"sum":1,"min":1,"max":1,"buckets":[99999,1]}}]`)
	if _, err := UnmarshalSamples(bad); err == nil {
		t.Fatal("accepted out-of-range bucket index")
	}
	// Odd-length bucket vector.
	odd := []byte(`[{"name":"x_ns","kind":"histogram","hist":{"count":1,"sum":1,"min":1,"max":1,"buckets":[3]}}]`)
	if _, err := UnmarshalSamples(odd); err == nil {
		t.Fatal("accepted odd-length bucket vector")
	}
}
