package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sand/internal/metrics"
)

// Counter is a monotonic (by convention) atomic counter handed out by a
// Registry. Callers cache the pointer and Add on the hot path; a nil
// Counter (from a nil Registry) is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Get returns the current value.
func (c *Counter) Get() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is the one interface every subsystem reports through:
// counters (push, cached pointer), gauges (pull, closure), histograms
// (push, cached pointer), snapshot providers (pull, bridge for legacy
// counter sets), and the embedded Tracer. All methods tolerate a nil
// receiver, so instrumented code runs unconditionally.
//
// Metric names are dotted ("core.gop.hits"); the Prometheus exposition
// sanitizes them to sand_core_gop_hits. Histogram names end in "_ns" by
// convention and expose as *_seconds summaries.
type Registry struct {
	tracer *Tracer

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() float64
	hists    map[string]*Histogram
	snaps    map[string]func() map[string]int64
}

// New creates a registry with a disabled tracer of default capacity.
func New() *Registry {
	return &Registry{
		tracer:   NewTracer(0),
		counters: map[string]*Counter{},
		gauges:   map[string]func() float64{},
		hists:    map[string]*Histogram{},
		snaps:    map[string]func() map[string]int64{},
	}
}

// Trace returns the registry's tracer (nil on a nil registry — itself a
// valid no-op tracer receiver).
func (r *Registry) Trace() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or replaces) a pull gauge; fn is called at exposition
// time and must be safe for concurrent use.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// Histogram returns (creating on first use) the named histogram. By
// convention histogram observations are nanoseconds and names end "_ns".
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// SnapshotFunc registers (or replaces) a named snapshot provider: fn
// returns a map of counter-style values exposed under "prefix.key". This
// bridges subsystems that keep their own counter structs (store stats,
// scheduler stats, metrics.CounterSet) into the unified exposition.
func (r *Registry) SnapshotFunc(prefix string, fn func() map[string]int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.snaps[prefix] = fn
	r.mu.Unlock()
}

// Sample is one gathered metric value.
type Sample struct {
	Name  string
	Kind  string // "counter", "gauge", "snapshot", "histogram"
	Value float64
	Hist  *HistSnapshot // set only for Kind "histogram"
}

// Gather evaluates every metric source and returns samples sorted by
// name.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	snaps := make(map[string]func() map[string]int64, len(r.snaps))
	for k, v := range r.snaps {
		snaps[k] = v
	}
	r.mu.Unlock()

	var out []Sample
	for name, c := range counters {
		out = append(out, Sample{Name: name, Kind: "counter", Value: float64(c.Get())})
	}
	for name, fn := range gauges {
		out = append(out, Sample{Name: name, Kind: "gauge", Value: fn()})
	}
	for prefix, fn := range snaps {
		for k, v := range fn() {
			out = append(out, Sample{Name: prefix + "." + k, Kind: "snapshot", Value: float64(v)})
		}
	}
	for name, h := range hists {
		s := h.Snapshot()
		out = append(out, Sample{Name: name, Kind: "histogram", Hist: &s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// promName sanitizes a dotted metric name into a Prometheus identifier.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("sand_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format. Histograms (nanosecond-valued) render as *_seconds summaries
// with p50/p90/p99 quantiles.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.Gather() {
		var err error
		switch s.Kind {
		case "histogram":
			base := promName(strings.TrimSuffix(s.Name, "_ns")) + "_seconds"
			_, err = fmt.Fprintf(w,
				"# TYPE %s summary\n%s{quantile=\"0.5\"} %g\n%s{quantile=\"0.9\"} %g\n%s{quantile=\"0.99\"} %g\n%s_sum %g\n%s_count %d\n",
				base,
				base, s.Hist.Quantile(0.50)/1e9,
				base, s.Hist.Quantile(0.90)/1e9,
				base, s.Hist.Quantile(0.99)/1e9,
				base, float64(s.Hist.Sum)/1e9,
				base, s.Hist.Count)
		case "gauge":
			name := promName(s.Name)
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, s.Value)
		default: // counter, snapshot
			name := promName(s.Name)
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %g\n", name, name, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders a human-readable dump of every metric — the
// consistent end-of-run report the examples print. Histogram rows show
// count and p50/p99/max as durations.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	t := metrics.NewTable("observability", "metric", "value")
	for _, s := range r.Gather() {
		switch s.Kind {
		case "histogram":
			if s.Hist.Count == 0 {
				continue
			}
			name := strings.TrimSuffix(s.Name, "_ns")
			t.AddRow(name+".count", s.Hist.Count)
			t.AddRow(name+".p50", metrics.Seconds(s.Hist.Quantile(0.50)/1e9))
			t.AddRow(name+".p99", metrics.Seconds(s.Hist.Quantile(0.99)/1e9))
			t.AddRow(name+".max", metrics.Seconds(float64(s.Hist.Max)/1e9))
		case "gauge":
			t.AddRow(s.Name, fmt.Sprintf("%.3f", s.Value))
		default:
			t.AddRow(s.Name, int64(s.Value))
		}
	}
	return t.Render(w)
}
