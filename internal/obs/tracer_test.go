package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer(64)
	tr.Instant("cat", "ev", 0, "")
	tr.Span("cat", "ev", 0, tr.Now(), "")
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer buffered %d events", tr.Len())
	}
	var nilTr *Tracer
	nilTr.Instant("cat", "ev", 0, "")
	nilTr.Enable()
	nilTr.Reset()
	if nilTr.Enabled() || nilTr.Len() != 0 || nilTr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestTracerRecordsAndSorts(t *testing.T) {
	tr := NewTracer(256)
	tr.Enable()
	start := tr.Now()
	tr.Instant("sched", "enqueue", 7, "k1")
	tr.Span("core", "batch", 7, start, "b0")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatal("events not sorted by TS")
		}
	}
	found := map[string]bool{}
	for _, e := range evs {
		found[e.Kind()] = true
		if e.Trace != 7 {
			t.Fatalf("trace id lost: %+v", e)
		}
	}
	if !found["sched.enqueue"] || !found["core.batch"] {
		t.Fatalf("kinds: %v", found)
	}
}

// TestTracerWraparoundConcurrent hammers a tiny ring from many writers:
// the ring must never grow past capacity, never tear an event, and stay
// exportable. Run under -race this also proves the locking discipline.
func TestTracerWraparoundConcurrent(t *testing.T) {
	const capacity = 128
	tr := NewTracer(capacity)
	tr.Enable()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					tr.Instant("stress", "instant", TraceID(w), fmt.Sprintf("w%d-%d", w, i))
				} else {
					tr.Span("stress", "span", TraceID(w), tr.Now(), "")
				}
			}
		}(w)
	}
	wg.Wait()
	if n := tr.Len(); n > capacity+tracerShards {
		t.Fatalf("ring grew past capacity: %d", n)
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events survived wraparound")
	}
	for _, e := range evs {
		if e.Cat != "stress" || (e.Name != "instant" && e.Name != "span") {
			t.Fatalf("torn event: %+v", e)
		}
	}
	// Export must remain valid JSON after wraparound.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != len(evs) {
		t.Fatalf("export has %d events, buffer has %d", len(parsed.TraceEvents), len(evs))
	}
}

func TestTracerResetAndDisable(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable()
	tr.Instant("a", "b", 0, "")
	if tr.Len() != 1 {
		t.Fatalf("len=%d", tr.Len())
	}
	tr.Disable()
	tr.Instant("a", "b", 0, "")
	if tr.Len() != 1 {
		t.Fatal("disabled tracer still recording")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("reset did not clear events")
	}
}
