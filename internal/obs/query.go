package obs

import "strings"

// This file is the assertion-facing read side of the registry: a gathered
// Snapshot whose values are addressable by dotted name, with histogram
// quantiles expanded into queryable scalar keys. The scenario harness
// evaluates its `assert:` expressions against these snapshots.

// Snapshot is a point-in-time flattening of a registry gather: every
// counter, gauge and snapshot value under its metric name, and every
// histogram expanded into derived scalars. For a histogram named
// "<base>_ns" the keys are
//
//	<base>.count      observation count
//	<base>.p50_ms     50th percentile, milliseconds
//	<base>.p90_ms     90th percentile, milliseconds
//	<base>.p99_ms     99th percentile, milliseconds
//	<base>.max_ms     maximum, milliseconds
//	<base>.mean_ms    mean, milliseconds
//
// (histograms not following the "_ns" suffix convention expand under
// their literal name with the same derived keys, unscaled).
type Snapshot struct {
	values map[string]float64
}

// Snapshot gathers the registry into a queryable snapshot. A nil
// registry yields an empty (but usable) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{values: map[string]float64{}}
	for _, sample := range r.Gather() {
		if sample.Kind != "histogram" {
			s.values[sample.Name] = sample.Value
			continue
		}
		h := sample.Hist
		base := sample.Name
		scale := 1.0
		if strings.HasSuffix(base, "_ns") {
			base = strings.TrimSuffix(base, "_ns")
			scale = 1e-6 // ns -> ms
		}
		s.values[base+".count"] = float64(h.Count)
		s.values[base+".p50_ms"] = h.Quantile(0.50) * scale
		s.values[base+".p90_ms"] = h.Quantile(0.90) * scale
		s.values[base+".p99_ms"] = h.Quantile(0.99) * scale
		s.values[base+".max_ms"] = float64(h.Max) * scale
		mean := 0.0
		if h.Count > 0 {
			mean = float64(h.Sum) / float64(h.Count)
		}
		s.values[base+".mean_ms"] = mean * scale
	}
	return s
}

// Get resolves a dotted metric name against the snapshot.
func (s *Snapshot) Get(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	v, ok := s.values[name]
	return v, ok
}

// Set inserts (or overrides) a value — callers layer computed metrics
// (fleet state counts, scenario aliases) over the gathered ones.
func (s *Snapshot) Set(name string, v float64) {
	if s == nil {
		return
	}
	s.values[name] = v
}

// Names returns every queryable key (unsorted; callers sort for output).
func (s *Snapshot) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.values))
	for k := range s.values {
		out = append(out, k)
	}
	return out
}

// Query gathers the registry and resolves one name — the one-shot form
// of Snapshot().Get(name).
func (r *Registry) Query(name string) (float64, bool) {
	return r.Snapshot().Get(name)
}
