package codec

// Residual-magnitude summaries. A P-frame's payload is the per-sample
// difference to its reference frame (mod 256), which the decoder already
// inflates into its scratch buffer before reconstruction. Summarizing
// that buffer per tile is nearly free — one pass over bytes the decoder
// just touched — and tells the engine which regions of the video are
// (almost) static between frames. The materialization layer uses the
// summaries to gate augmentation work: a frame whose accumulated residual
// magnitude stays below a threshold can reuse its predecessor's augmented
// output instead of recomputing the chain.

// ResidualTile is the square tile edge (in pixels) residual summaries
// aggregate over.
const ResidualTile = 16

// residualMag maps a mod-256 residual byte to the magnitude of its
// minimal signed representative: min(v, 256-v). Small pixel deltas encode
// as bytes near 0 or 255; both map to small magnitudes.
var residualMag [256]uint8

func init() {
	for v := 1; v < 256; v++ {
		m := v
		if m > 128 {
			m = 256 - m
		}
		residualMag[v] = uint8(m)
	}
}

// ResidualSummary aggregates one frame's prediction residual into per-tile
// magnitude sums. Tiles are ResidualTile x ResidualTile pixels (edge tiles
// may be smaller) and accumulate across all channels.
type ResidualSummary struct {
	// W, H, C is the frame geometry the summary covers.
	W, H, C int
	// TilesX, TilesY is the tile-grid shape.
	TilesX, TilesY int
	// SumAbs[ty*TilesX+tx] is the summed residual magnitude of the tile
	// across every channel.
	SumAbs []uint32
	// Index is the source frame index the summary describes.
	Index int
	// IFrame marks keyframes: their "residual" is a spatial predictor, not
	// a temporal delta, so the summary carries no motion information and
	// consumers must treat the frame as fully dynamic.
	IFrame bool
}

// summarizeResidual builds a summary from an inflated residual buffer
// (len w*h*c, plane-major).
func summarizeResidual(residual []byte, w, h, c, index int) *ResidualSummary {
	tx := (w + ResidualTile - 1) / ResidualTile
	ty := (h + ResidualTile - 1) / ResidualTile
	s := &ResidualSummary{
		W: w, H: h, C: c, TilesX: tx, TilesY: ty,
		SumAbs: make([]uint32, tx*ty),
		Index:  index,
	}
	for ch := 0; ch < c; ch++ {
		plane := residual[ch*w*h : (ch+1)*w*h]
		for y := 0; y < h; y++ {
			row := plane[y*w : (y+1)*w]
			trow := s.SumAbs[(y/ResidualTile)*tx : (y/ResidualTile)*tx+tx]
			for x, v := range row {
				trow[x/ResidualTile] += uint32(residualMag[v])
			}
		}
	}
	return s
}

// tileArea returns the pixel count of tile (tx, ty), accounting for
// clipped edge tiles.
func (s *ResidualSummary) tileArea(tx, ty int) int {
	w := ResidualTile
	if (tx+1)*ResidualTile > s.W {
		w = s.W - tx*ResidualTile
	}
	h := ResidualTile
	if (ty+1)*ResidualTile > s.H {
		h = s.H - ty*ResidualTile
	}
	return w * h
}

// MeanAbs returns tile (tx, ty)'s mean residual magnitude per sample
// (pixel x channel).
func (s *ResidualSummary) MeanAbs(tx, ty int) float64 {
	return float64(s.SumAbs[ty*s.TilesX+tx]) / float64(s.tileArea(tx, ty)*s.C)
}

// MaxMean returns the largest per-tile mean magnitude — the summary's
// "most dynamic tile" statistic.
func (s *ResidualSummary) MaxMean() float64 {
	var max float64
	for ty := 0; ty < s.TilesY; ty++ {
		for tx := 0; tx < s.TilesX; tx++ {
			if m := s.MeanAbs(tx, ty); m > max {
				max = m
			}
		}
	}
	return max
}

// StaticFrac returns the fraction of tiles whose mean magnitude is below
// thresh.
func (s *ResidualSummary) StaticFrac(thresh float64) float64 {
	if len(s.SumAbs) == 0 {
		return 0
	}
	static := 0
	for ty := 0; ty < s.TilesY; ty++ {
		for tx := 0; tx < s.TilesX; tx++ {
			if s.MeanAbs(tx, ty) < thresh {
				static++
			}
		}
	}
	return float64(static) / float64(len(s.SumAbs))
}
