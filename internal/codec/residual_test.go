package codec

import (
	"math/rand"
	"testing"

	"sand/internal/frame"
)

// encodeClip is a test helper: encode n frames produced by gen(i).
func encodeClip(t *testing.T, n, gop int, gen func(i int) *frame.Frame) *Video {
	t.Helper()
	frames := make([]*frame.Frame, n)
	for i := range frames {
		frames[i] = gen(i)
	}
	clip, err := frame.NewClip(frames)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Encode(clip, EncodeParams{GOP: gop, FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestResidualSummaryStaticVideo: a perfectly static video yields zero
// residual magnitude on every P-frame tile, and I-frames are flagged.
func TestResidualSummaryStaticVideo(t *testing.T) {
	base := frame.New(40, 24, 3)
	rng := rand.New(rand.NewSource(1))
	rng.Read(base.Pix)
	v := encodeClip(t, 8, 4, func(i int) *frame.Frame {
		g := base.Clone()
		g.Index = i
		return g
	})
	d := NewDecoder(v, nil)
	defer d.Close()
	d.CollectResiduals(true)
	for i := 0; i < 8; i++ {
		if _, err := d.Frame(i); err != nil {
			t.Fatal(err)
		}
		r := d.TakeResidual()
		if r == nil {
			t.Fatalf("frame %d: no residual summary", i)
		}
		if r.Index != i {
			t.Fatalf("frame %d: summary index %d", i, r.Index)
		}
		if i%4 == 0 {
			if !r.IFrame {
				t.Fatalf("frame %d should be summarized as I-frame", i)
			}
			continue
		}
		if r.IFrame {
			t.Fatalf("frame %d wrongly flagged I-frame", i)
		}
		if got := r.MaxMean(); got != 0 {
			t.Fatalf("static video frame %d: MaxMean %v, want 0", i, got)
		}
		if got := r.StaticFrac(0.5); got != 1 {
			t.Fatalf("static video frame %d: StaticFrac %v, want 1", i, got)
		}
	}
	if r := d.TakeResidual(); r != nil {
		t.Fatal("TakeResidual did not clear the pending summary")
	}
}

// TestResidualSummaryLocalizedMotion: motion confined to one corner tile
// must light up that tile and leave the rest static.
func TestResidualSummaryLocalizedMotion(t *testing.T) {
	v := encodeClip(t, 2, 8, func(i int) *frame.Frame {
		g := frame.New(64, 48, 1)
		g.Index = i
		if i == 1 {
			// Perturb a block inside tile (0,0) only.
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					g.Set(x, y, 0, 200)
				}
			}
		}
		return g
	})
	d := NewDecoder(v, nil)
	defer d.Close()
	d.CollectResiduals(true)
	if _, err := d.Frame(1); err != nil {
		t.Fatal(err)
	}
	r := d.TakeResidual()
	if r == nil || r.IFrame {
		t.Fatalf("expected P-frame summary, got %+v", r)
	}
	if m := r.MeanAbs(0, 0); m <= 0 {
		t.Fatalf("motion tile mean %v, want > 0", m)
	}
	for ty := 0; ty < r.TilesY; ty++ {
		for tx := 0; tx < r.TilesX; tx++ {
			if tx == 0 && ty == 0 {
				continue
			}
			if m := r.MeanAbs(tx, ty); m != 0 {
				t.Fatalf("tile (%d,%d) mean %v, want 0", tx, ty, m)
			}
		}
	}
	wantStatic := 1 - 1/float64(r.TilesX*r.TilesY)
	if got := r.StaticFrac(0.5); got != wantStatic {
		t.Fatalf("StaticFrac %v, want %v", got, wantStatic)
	}
}

// TestResidualMagnitudeWraparound: residual bytes near 256 encode small
// negative deltas and must map to small magnitudes.
func TestResidualMagnitudeWraparound(t *testing.T) {
	if residualMag[0] != 0 || residualMag[1] != 1 || residualMag[255] != 1 ||
		residualMag[128] != 128 || residualMag[200] != 56 {
		t.Fatalf("magnitude LUT wrong: %v %v %v %v %v",
			residualMag[0], residualMag[1], residualMag[255], residualMag[128], residualMag[200])
	}
}

// TestResidualsDisabledByDefault: no summaries unless opted in, and
// disabling clears pending state.
func TestResidualsDisabledByDefault(t *testing.T) {
	v := encodeClip(t, 2, 8, func(i int) *frame.Frame {
		g := frame.New(16, 16, 1)
		g.Index = i
		return g
	})
	d := NewDecoder(v, nil)
	defer d.Close()
	if _, err := d.Frame(1); err != nil {
		t.Fatal(err)
	}
	if r := d.TakeResidual(); r != nil {
		t.Fatal("summary produced with collection disabled")
	}
	d.CollectResiduals(true)
	if _, err := d.Frame(0); err != nil {
		t.Fatal(err)
	}
	d.CollectResiduals(false)
	if r := d.TakeResidual(); r != nil {
		t.Fatal("disable did not clear pending summary")
	}
}
