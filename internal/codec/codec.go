// Package codec implements TVC ("toy video codec"), a real, lossless video
// codec with the structural properties that drive SAND's design:
//
//   - Group-of-pictures (GOP) structure: every GOP starts with an
//     intra-coded I-frame; the remaining frames are P-frames predicted from
//     their immediate predecessor.
//   - Decode amplification: random access to frame n requires decoding
//     every frame from the preceding I-frame through n, exactly the
//     inter-frame dependency that makes sparse frame sampling expensive in
//     H.264/VP9 and that SAND's reuse planning amortizes.
//   - Seekable container: a frame index maps frame numbers to byte offsets
//     and frame types, so a decoder can jump to the right GOP without
//     scanning the stream.
//
// I-frames use left-neighbour spatial prediction; P-frames use temporal
// prediction against the previous reconstructed frame. Residuals are
// entropy-coded with DEFLATE (compress/flate). Encoding is lossless: the
// decoder reconstructs bit-exact pixels, which the test suite verifies.
package codec

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"sand/internal/frame"
)

// FrameType distinguishes intra-coded from predicted frames.
type FrameType uint8

const (
	// IFrame is intra-coded: decodable without reference to other frames.
	IFrame FrameType = iota
	// PFrame is predicted from the immediately preceding frame.
	PFrame
)

func (t FrameType) String() string {
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

const (
	containerMagic = 0x54564331 // "TVC1"
	headerSize     = 36
	indexEntrySize = 9 // offset(8) + type(1)
	// DefaultGOP mirrors the ~1s keyframe interval typical of the
	// H.264-encoded web video the paper's datasets use (30 fps).
	DefaultGOP = 30
)

// EncodeParams configures the encoder.
type EncodeParams struct {
	// GOP is the keyframe interval: frame i is an I-frame iff i%GOP == 0.
	GOP int
	// FPS is stored in the container for PTS metadata.
	FPS int
	// Level selects the flate compression level (flate.DefaultCompression
	// when zero).
	Level int
}

func (p *EncodeParams) normalize() error {
	if p.GOP <= 0 {
		p.GOP = DefaultGOP
	}
	if p.FPS <= 0 {
		p.FPS = 30
	}
	if p.Level == 0 {
		p.Level = flate.DefaultCompression
	}
	if p.Level < flate.HuffmanOnly || p.Level > flate.BestCompression {
		return fmt.Errorf("codec: flate level %d out of range", p.Level)
	}
	return nil
}

// Video is an encoded TVC bitstream plus its parsed metadata.
type Video struct {
	W, H, C    int
	FPS        int
	GOP        int
	FrameCount int
	// Data is the complete container: header, index, frame payloads.
	Data []byte
	// index[i] = (offset into Data, frame type) for frame i.
	index []indexEntry
}

type indexEntry struct {
	offset uint64
	ftype  FrameType
}

// Bytes returns the encoded container size.
func (v *Video) Bytes() int { return len(v.Data) }

// Type returns the frame type of frame i.
func (v *Video) Type(i int) (FrameType, error) {
	if i < 0 || i >= v.FrameCount {
		return 0, fmt.Errorf("codec: frame %d out of range [0,%d)", i, v.FrameCount)
	}
	return v.index[i].ftype, nil
}

// KeyframeBefore returns the index of the I-frame at or before frame i.
func (v *Video) KeyframeBefore(i int) (int, error) {
	if i < 0 || i >= v.FrameCount {
		return 0, fmt.Errorf("codec: frame %d out of range [0,%d)", i, v.FrameCount)
	}
	for j := i; j >= 0; j-- {
		if v.index[j].ftype == IFrame {
			return j, nil
		}
	}
	return 0, errors.New("codec: corrupt index: no keyframe at frame 0")
}

// DecodeCost returns how many frames must be decoded to reconstruct frame
// i via random access — the decode-amplification factor SAND's planner
// reasons about.
func (v *Video) DecodeCost(i int) (int, error) {
	k, err := v.KeyframeBefore(i)
	if err != nil {
		return 0, err
	}
	return i - k + 1, nil
}

// Encode compresses a clip into a TVC container.
func Encode(clip *frame.Clip, params EncodeParams) (*Video, error) {
	if err := params.normalize(); err != nil {
		return nil, err
	}
	if clip == nil || clip.Len() == 0 {
		return nil, frame.ErrEmptyClip
	}
	w, h, c := clip.Geometry()

	var payloads [][]byte
	index := make([]indexEntry, 0, clip.Len())
	var prev *frame.Frame
	residual := make([]byte, w*h*c)
	for i, f := range clip.Frames {
		var ft FrameType
		if i%params.GOP == 0 {
			ft = IFrame
			predictIntra(f, residual)
		} else {
			ft = PFrame
			predictTemporal(f, prev, residual)
		}
		comp, err := deflateBytes(residual, params.Level)
		if err != nil {
			return nil, fmt.Errorf("codec: frame %d: %w", i, err)
		}
		payloads = append(payloads, comp)
		index = append(index, indexEntry{ftype: ft})
		prev = f
	}

	// Assemble container: header | index | payloads (each length-prefixed).
	indexBytes := headerSize + indexEntrySize*len(index)
	off := uint64(indexBytes)
	for i := range index {
		index[i].offset = off
		off += 4 + uint64(len(payloads[i]))
	}

	buf := make([]byte, 0, off)
	hdr := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hdr[0:], containerMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(w))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(h))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(c))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(params.FPS))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(params.GOP))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(clip.Len()))
	binary.LittleEndian.PutUint64(hdr[28:], off) // total size, sanity check
	buf = append(buf, hdr...)
	for _, e := range index {
		var ent [indexEntrySize]byte
		binary.LittleEndian.PutUint64(ent[0:], e.offset)
		ent[8] = byte(e.ftype)
		buf = append(buf, ent[:]...)
	}
	for _, p := range payloads {
		var sz [4]byte
		binary.LittleEndian.PutUint32(sz[:], uint32(len(p)))
		buf = append(buf, sz[:]...)
		buf = append(buf, p...)
	}

	return &Video{
		W: w, H: h, C: c,
		FPS: params.FPS, GOP: params.GOP,
		FrameCount: clip.Len(),
		Data:       buf,
		index:      index,
	}, nil
}

// Parse validates a TVC container and returns its metadata without
// decoding any frames.
func Parse(data []byte) (*Video, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("codec: container too small (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != containerMagic {
		return nil, fmt.Errorf("codec: bad magic %#x", binary.LittleEndian.Uint32(data[0:]))
	}
	v := &Video{
		W:          int(binary.LittleEndian.Uint32(data[4:])),
		H:          int(binary.LittleEndian.Uint32(data[8:])),
		C:          int(binary.LittleEndian.Uint32(data[12:])),
		FPS:        int(binary.LittleEndian.Uint32(data[16:])),
		GOP:        int(binary.LittleEndian.Uint32(data[20:])),
		FrameCount: int(binary.LittleEndian.Uint32(data[24:])),
		Data:       data,
	}
	total := binary.LittleEndian.Uint64(data[28:])
	if v.W <= 0 || v.H <= 0 || v.C <= 0 || v.C > 16 || v.GOP <= 0 || v.FrameCount <= 0 {
		return nil, fmt.Errorf("codec: implausible header %+v", v)
	}
	if total != uint64(len(data)) {
		return nil, fmt.Errorf("codec: size mismatch: header says %d, have %d", total, len(data))
	}
	need := headerSize + indexEntrySize*v.FrameCount
	if len(data) < need {
		return nil, fmt.Errorf("codec: index truncated")
	}
	v.index = make([]indexEntry, v.FrameCount)
	for i := range v.index {
		base := headerSize + i*indexEntrySize
		v.index[i] = indexEntry{
			offset: binary.LittleEndian.Uint64(data[base:]),
			ftype:  FrameType(data[base+8]),
		}
		if v.index[i].ftype > PFrame {
			return nil, fmt.Errorf("codec: frame %d has unknown type %d", i, data[base+8])
		}
		if v.index[i].offset+4 > uint64(len(data)) {
			return nil, fmt.Errorf("codec: frame %d offset %d out of range", i, v.index[i].offset)
		}
	}
	if v.index[0].ftype != IFrame {
		return nil, errors.New("codec: stream does not start with an I-frame")
	}
	return v, nil
}

// predictIntra writes the left-neighbour residual of f into dst.
func predictIntra(f *frame.Frame, dst []byte) {
	w := f.W
	for c := 0; c < f.C; c++ {
		plane := f.Plane(c)
		out := dst[c*f.W*f.H : (c+1)*f.W*f.H]
		for y := 0; y < f.H; y++ {
			row := plane[y*w : (y+1)*w]
			orow := out[y*w : (y+1)*w]
			prev := byte(0)
			for x, v := range row {
				orow[x] = v - prev
				prev = v
			}
		}
	}
}

// predictTemporal writes the frame-difference residual of f vs ref into dst.
func predictTemporal(f, ref *frame.Frame, dst []byte) {
	for i := range f.Pix {
		dst[i] = f.Pix[i] - ref.Pix[i]
	}
}

// deflaterPools and inflaterPool Reset-reuse flate state across frames:
// encoding and random-access decoding otherwise rebuild a ~32-64KB flate
// state machine for every single frame payload.
var deflaterPools sync.Map // flate level -> *sync.Pool of *flate.Writer

type inflater struct {
	src bytes.Reader
	fr  io.ReadCloser // also a flate.Resetter
}

var inflaterPool sync.Pool

// poolStats counts coder reuse for the metrics layer.
var poolStats struct {
	writerReuse atomic.Int64
	readerReuse atomic.Int64
}

// PoolStats snapshots the package's flate-pool counters.
func PoolStats() map[string]int64 {
	return map[string]int64{
		"codec.flate.writer_reuse": poolStats.writerReuse.Load(),
		"codec.flate.reader_reuse": poolStats.readerReuse.Load(),
	}
}

func deflateBytes(b []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	poolAny, _ := deflaterPools.LoadOrStore(level, &sync.Pool{})
	pool := poolAny.(*sync.Pool)
	var fw *flate.Writer
	if v := pool.Get(); v != nil {
		fw = v.(*flate.Writer)
		fw.Reset(&buf)
		poolStats.writerReuse.Add(1)
	} else {
		var err error
		fw, err = flate.NewWriter(&buf, level)
		if err != nil {
			return nil, err
		}
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	pool.Put(fw)
	return buf.Bytes(), nil
}

func inflateBytes(b []byte, dst []byte) error {
	var it *inflater
	if v := inflaterPool.Get(); v != nil {
		it = v.(*inflater)
		it.src.Reset(b)
		if err := it.fr.(flate.Resetter).Reset(&it.src, nil); err != nil {
			return err
		}
		poolStats.readerReuse.Add(1)
	} else {
		it = &inflater{}
		it.src.Reset(b)
		it.fr = flate.NewReader(&it.src)
	}
	if _, err := io.ReadFull(it.fr, dst); err != nil {
		return err
	}
	var one [1]byte
	if _, err := it.fr.Read(one[:]); err != io.EOF {
		return fmt.Errorf("codec: trailing data in frame payload: %v", err)
	}
	inflaterPool.Put(it)
	return nil
}
