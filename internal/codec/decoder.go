package codec

import (
	"fmt"
	"sync/atomic"

	"sand/internal/frame"
)

// Stats counts decoder work so experiments can report operation counts
// (Figure 16) and decode amplification. All fields are updated atomically
// and safe to read concurrently.
type Stats struct {
	// FramesDecoded counts every frame reconstruction, including frames
	// decoded only to satisfy inter-frame dependencies.
	FramesDecoded atomic.Int64
	// FramesRequested counts frames the caller actually asked for.
	FramesRequested atomic.Int64
	// BytesInflated counts compressed payload bytes consumed.
	BytesInflated atomic.Int64
	// Seeks counts random-access operations (jumps to a keyframe).
	Seeks atomic.Int64
}

// Amplification returns decoded/requested, the decode-amplification ratio.
func (s *Stats) Amplification() float64 {
	req := s.FramesRequested.Load()
	if req == 0 {
		return 0
	}
	return float64(s.FramesDecoded.Load()) / float64(req)
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.FramesDecoded.Store(0)
	s.FramesRequested.Store(0)
	s.BytesInflated.Store(0)
	s.Seeks.Store(0)
}

// Decoder reconstructs frames from a TVC container. A Decoder keeps the
// last reconstructed frame so sequential access is O(1) per frame; random
// access seeks to the preceding keyframe and rolls forward (decode
// amplification). A Decoder is not safe for concurrent use; create one per
// goroutine and share the immutable *Video.
//
// Reconstruction ping-pongs between two internal pooled buffers, so a
// roll-forward of N frames performs zero per-frame allocations; only the
// frames the caller actually requests are copied out (Frame returns a
// clone). Call Close when done to return the buffers to the frame pool.
type Decoder struct {
	v     *Video
	stats *Stats
	// last is the most recently reconstructed frame, lastIdx its number.
	// last always aliases bufA or bufB.
	last       *frame.Frame
	lastIdx    int
	scratch    []byte
	bufA, bufB *frame.Frame
	// collectResiduals enables per-frame residual summaries; residual
	// holds the summary of the most recently decoded frame.
	collectResiduals bool
	residual         *ResidualSummary
}

// NewDecoder creates a decoder over v. stats may be nil.
func NewDecoder(v *Video, stats *Stats) *Decoder {
	return &Decoder{v: v, stats: stats, lastIdx: -1, scratch: make([]byte, v.W*v.H*v.C)}
}

// Video returns the container being decoded.
func (d *Decoder) Video() *Video { return d.v }

// CollectResiduals toggles residual summarization: when enabled, every
// decoded frame's inflated residual is aggregated into a per-tile
// magnitude summary retrievable with TakeResidual. The pass costs one
// read over the scratch buffer the decoder just inflated.
func (d *Decoder) CollectResiduals(on bool) {
	d.collectResiduals = on
	if !on {
		d.residual = nil
	}
}

// TakeResidual returns the residual summary of the most recently decoded
// frame and clears it, or nil when none is pending (collection disabled,
// or no frame decoded since the last take).
func (d *Decoder) TakeResidual() *ResidualSummary {
	r := d.residual
	d.residual = nil
	return r
}

// target returns the internal reconstruction buffer that does not hold
// d.last, allocating lazily. Its contents are fully overwritten by the
// reconstruction kernels before anyone reads them.
func (d *Decoder) target() *frame.Frame {
	if d.bufA == nil {
		d.bufA = frame.NewPooled(d.v.W, d.v.H, d.v.C)
	}
	if d.last == d.bufA {
		if d.bufB == nil {
			d.bufB = frame.NewPooled(d.v.W, d.v.H, d.v.C)
		}
		return d.bufB
	}
	return d.bufA
}

// Prime seeds the decoder's reference state with an already-reconstructed
// frame (which must be the bit-exact pixels of frame idx), so decoding
// can continue from idx+1 without rolling forward from the keyframe. The
// decoded-GOP cache uses this to extend a partially decoded GOP.
func (d *Decoder) Prime(ref *frame.Frame, idx int) error {
	if idx < 0 || idx >= d.v.FrameCount {
		return fmt.Errorf("codec: prime index %d out of range [0,%d)", idx, d.v.FrameCount)
	}
	if ref == nil || ref.W != d.v.W || ref.H != d.v.H || ref.C != d.v.C {
		return fmt.Errorf("codec: prime frame geometry mismatch")
	}
	t := d.target()
	copy(t.Pix, ref.Pix)
	t.Index = idx
	t.PTS = int64(idx) * 1000 / int64(d.v.FPS)
	d.last, d.lastIdx = t, idx
	return nil
}

// Close returns the decoder's internal buffers to the frame pool. The
// decoder must not be used afterwards.
func (d *Decoder) Close() {
	d.last = nil
	d.lastIdx = -1
	if d.bufA != nil {
		frame.Recycle(d.bufA)
		d.bufA = nil
	}
	if d.bufB != nil {
		frame.Recycle(d.bufB)
		d.bufB = nil
	}
}

// decodeOne reconstructs frame i assuming its reference (i-1, for P-frames)
// is already in d.last.
func (d *Decoder) decodeOne(i int) (*frame.Frame, error) {
	e := d.v.index[i]
	data := d.v.Data
	if e.offset+4 > uint64(len(data)) {
		return nil, fmt.Errorf("codec: frame %d offset corrupt", i)
	}
	sz := int(uint32(data[e.offset]) | uint32(data[e.offset+1])<<8 | uint32(data[e.offset+2])<<16 | uint32(data[e.offset+3])<<24)
	start := int(e.offset) + 4
	if start+sz > len(data) {
		return nil, fmt.Errorf("codec: frame %d payload truncated", i)
	}
	if err := inflateBytes(data[start:start+sz], d.scratch); err != nil {
		return nil, fmt.Errorf("codec: frame %d: %w", i, err)
	}
	// Reconstruct into the ping-pong buffer not holding the reference;
	// both kernels below overwrite every sample.
	f := d.target()
	f.Index = i
	f.PTS = int64(i) * 1000 / int64(d.v.FPS)
	switch e.ftype {
	case IFrame:
		reconstructIntra(f, d.scratch)
	case PFrame:
		if d.last == nil || d.lastIdx != i-1 {
			return nil, fmt.Errorf("codec: P-frame %d decoded without reference %d", i, i-1)
		}
		for j := range f.Pix {
			f.Pix[j] = d.scratch[j] + d.last.Pix[j]
		}
	}
	if d.collectResiduals {
		if e.ftype == PFrame {
			d.residual = summarizeResidual(d.scratch, f.W, f.H, f.C, i)
		} else {
			// Keyframe: spatial residual carries no temporal signal.
			d.residual = &ResidualSummary{W: f.W, H: f.H, C: f.C, Index: i, IFrame: true}
		}
	}
	if d.stats != nil {
		d.stats.FramesDecoded.Add(1)
		d.stats.BytesInflated.Add(int64(sz))
	}
	d.last, d.lastIdx = f, i
	return f, nil
}

func reconstructIntra(f *frame.Frame, residual []byte) {
	w := f.W
	for c := 0; c < f.C; c++ {
		plane := f.Plane(c)
		res := residual[c*f.W*f.H : (c+1)*f.W*f.H]
		for y := 0; y < f.H; y++ {
			row := plane[y*w : (y+1)*w]
			rrow := res[y*w : (y+1)*w]
			prev := byte(0)
			for x := range row {
				row[x] = rrow[x] + prev
				prev = row[x]
			}
		}
	}
}

// Frame returns frame i, decoding from the nearest usable reference. This
// is the random-access entry point: if the decoder's state cannot reach i
// by rolling forward, it seeks to the keyframe at or before i.
func (d *Decoder) Frame(i int) (*frame.Frame, error) {
	if i < 0 || i >= d.v.FrameCount {
		return nil, fmt.Errorf("codec: frame %d out of range [0,%d)", i, d.v.FrameCount)
	}
	if d.stats != nil {
		d.stats.FramesRequested.Add(1)
	}
	if d.lastIdx == i && d.last != nil {
		// Already decoded; return a copy so the caller cannot corrupt
		// decoder state.
		return d.last.Clone(), nil
	}
	start := d.lastIdx + 1
	if d.last == nil || i < start {
		k, err := d.v.KeyframeBefore(i)
		if err != nil {
			return nil, err
		}
		start = k
		d.last, d.lastIdx = nil, -1
		if d.stats != nil {
			d.stats.Seeks.Add(1)
		}
	} else if k, err := d.v.KeyframeBefore(i); err == nil && k >= start {
		// A keyframe lies between our state and the target; jumping to it
		// is cheaper than rolling forward across the GOP boundary.
		start = k
		d.last, d.lastIdx = nil, -1
		if d.stats != nil {
			d.stats.Seeks.Add(1)
		}
	}
	var f *frame.Frame
	for j := start; j <= i; j++ {
		var err error
		f, err = d.decodeOne(j)
		if err != nil {
			return nil, err
		}
	}
	return f.Clone(), nil
}

// Frames decodes the given frame indices (which must be ascending) with a
// single forward pass per GOP run, returning them in order. It is the bulk
// interface the materialization engine uses: consecutive indices inside a
// GOP share the roll-forward work.
func (d *Decoder) Frames(indices []int) ([]*frame.Frame, error) {
	out := make([]*frame.Frame, 0, len(indices))
	lastSeen := -1
	for _, i := range indices {
		if i <= lastSeen {
			return nil, fmt.Errorf("codec: Frames requires strictly ascending indices (%d after %d)", i, lastSeen)
		}
		lastSeen = i
		f, err := d.Frame(i)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// DecodeAll reconstructs the full video as a clip.
func (d *Decoder) DecodeAll() (*frame.Clip, error) {
	frames := make([]*frame.Frame, 0, d.v.FrameCount)
	for i := 0; i < d.v.FrameCount; i++ {
		f, err := d.Frame(i)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frame.NewClip(frames)
}

// PlanCost returns the total number of frame decodes needed to extract the
// given ascending indices in one pass — the cost model the planner and the
// simulator share. It accounts for GOP-boundary seeks exactly like the
// real decoder.
func PlanCost(v *Video, indices []int) (int, error) {
	cost := 0
	pos := -1 // last decoded frame, -1 = no state
	lastSeen := -1
	for _, i := range indices {
		if i <= lastSeen {
			return 0, fmt.Errorf("codec: PlanCost requires strictly ascending indices (%d after %d)", i, lastSeen)
		}
		lastSeen = i
		if i < 0 || i >= v.FrameCount {
			return 0, fmt.Errorf("codec: index %d out of range [0,%d)", i, v.FrameCount)
		}
		k, err := v.KeyframeBefore(i)
		if err != nil {
			return 0, err
		}
		start := pos + 1
		if pos < 0 || k > pos {
			start = k
		}
		if i >= start {
			cost += i - start + 1
		}
		pos = i
	}
	return cost, nil
}
