package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sand/internal/frame"
)

// syntheticClip builds a temporally coherent clip: a static, spatially
// detailed texture (which only intra prediction must pay for once per GOP)
// overlaid with a small moving bright square, so temporal prediction has
// near-zero residuals while intra prediction does real work.
func syntheticClip(rng *rand.Rand, n, w, h, c int) *frame.Clip {
	texture := frame.New(w, h, c)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				texture.Set(x, y, ch, byte((x*7+y*13+ch*31)%64+rng.Intn(8)))
			}
		}
	}
	frames := make([]*frame.Frame, n)
	for i := range frames {
		f := texture.Clone()
		// Moving bright square, 1/8 of the frame.
		bx, by := (i*3)%(w-w/8), (i*2)%(h-h/8)
		for ch := 0; ch < c; ch++ {
			for y := by; y < by+h/8; y++ {
				for x := bx; x < bx+w/8; x++ {
					f.Set(x, y, ch, 250)
				}
			}
		}
		frames[i] = f
	}
	clip, err := frame.NewClip(frames)
	if err != nil {
		panic(err)
	}
	return clip
}

func encodeHelper(t testing.TB, clip *frame.Clip, gop int) *Video {
	t.Helper()
	v, err := Encode(clip, EncodeParams{GOP: gop, FPS: 30})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEncodeRejectsEmpty(t *testing.T) {
	if _, err := Encode(nil, EncodeParams{}); err == nil {
		t.Fatal("Encode(nil) accepted")
	}
}

func TestEncodeRejectsBadLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clip := syntheticClip(rng, 2, 8, 8, 1)
	if _, err := Encode(clip, EncodeParams{Level: 42}); err == nil {
		t.Fatal("Encode accepted flate level 42")
	}
}

func TestRoundTripLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	clip := syntheticClip(rng, 25, 32, 24, 3)
	v := encodeHelper(t, clip, 10)
	dec := NewDecoder(v, nil)
	out, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != clip.Len() {
		t.Fatalf("decoded %d frames, want %d", out.Len(), clip.Len())
	}
	for i := range clip.Frames {
		if !clip.Frames[i].Equal(out.Frames[i]) {
			t.Fatalf("frame %d not bit-exact", i)
		}
	}
}

func TestGOPStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clip := syntheticClip(rng, 23, 16, 16, 1)
	v := encodeHelper(t, clip, 7)
	for i := 0; i < 23; i++ {
		ft, err := v.Type(i)
		if err != nil {
			t.Fatal(err)
		}
		want := PFrame
		if i%7 == 0 {
			want = IFrame
		}
		if ft != want {
			t.Fatalf("frame %d type = %v, want %v", i, ft, want)
		}
	}
	if _, err := v.Type(23); err == nil {
		t.Fatal("Type accepted out-of-range index")
	}
}

func TestKeyframeBeforeAndDecodeCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	clip := syntheticClip(rng, 30, 8, 8, 1)
	v := encodeHelper(t, clip, 10)
	cases := []struct{ frame, key, cost int }{
		{0, 0, 1}, {5, 0, 6}, {9, 0, 10}, {10, 10, 1}, {19, 10, 10}, {29, 20, 10},
	}
	for _, c := range cases {
		k, err := v.KeyframeBefore(c.frame)
		if err != nil || k != c.key {
			t.Fatalf("KeyframeBefore(%d) = %d, %v; want %d", c.frame, k, err, c.key)
		}
		cost, err := v.DecodeCost(c.frame)
		if err != nil || cost != c.cost {
			t.Fatalf("DecodeCost(%d) = %d, %v; want %d", c.frame, cost, err, c.cost)
		}
	}
}

func TestRandomAccessMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	clip := syntheticClip(rng, 40, 16, 12, 3)
	v := encodeHelper(t, clip, 8)
	seq := NewDecoder(v, nil)
	full, err := seq.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	// Access frames in a scrambled order with a fresh/reused decoder.
	ra := NewDecoder(v, nil)
	order := rng.Perm(40)
	for _, i := range order {
		f, err := ra.Frame(i)
		if err != nil {
			t.Fatalf("Frame(%d): %v", i, err)
		}
		if !f.Equal(full.Frames[i]) {
			t.Fatalf("random access frame %d differs from sequential", i)
		}
		if f.Index != i {
			t.Fatalf("frame %d has Index %d", i, f.Index)
		}
	}
}

func TestDecodeAmplificationAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	clip := syntheticClip(rng, 30, 8, 8, 1)
	v := encodeHelper(t, clip, 10)
	var st Stats
	dec := NewDecoder(v, &st)
	// Request frame 9: must decode 0..9 (10 frames).
	if _, err := dec.Frame(9); err != nil {
		t.Fatal(err)
	}
	if got := st.FramesDecoded.Load(); got != 10 {
		t.Fatalf("decoded %d frames for frame 9, want 10", got)
	}
	if st.FramesRequested.Load() != 1 {
		t.Fatalf("requested = %d, want 1", st.FramesRequested.Load())
	}
	if amp := st.Amplification(); amp != 10 {
		t.Fatalf("amplification = %v, want 10", amp)
	}
	// Request frame 12 next: seek to keyframe 10, decode 10..12 (3 more).
	if _, err := dec.Frame(12); err != nil {
		t.Fatal(err)
	}
	if got := st.FramesDecoded.Load(); got != 13 {
		t.Fatalf("total decoded = %d, want 13", got)
	}
	st.Reset()
	if st.FramesDecoded.Load() != 0 || st.Amplification() != 0 {
		t.Fatal("Reset did not zero stats")
	}
}

func TestSequentialAccessIsIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clip := syntheticClip(rng, 20, 8, 8, 1)
	v := encodeHelper(t, clip, 5)
	var st Stats
	dec := NewDecoder(v, &st)
	for i := 0; i < 20; i++ {
		if _, err := dec.Frame(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.FramesDecoded.Load(); got != 20 {
		t.Fatalf("sequential decode of 20 frames performed %d decodes", got)
	}
}

func TestRepeatedFrameIsCached(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	clip := syntheticClip(rng, 10, 8, 8, 1)
	v := encodeHelper(t, clip, 5)
	var st Stats
	dec := NewDecoder(v, &st)
	a, err := dec.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dec.Frame(3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("repeat access returned different pixels")
	}
	if got := st.FramesDecoded.Load(); got != 4 {
		t.Fatalf("repeat access decoded %d frames, want 4", got)
	}
	// Mutating the returned frame must not corrupt decoder state.
	a.Pix[0] ^= 0xff
	c, _ := dec.Frame(3)
	if !b.Equal(c) {
		t.Fatal("caller mutation corrupted decoder state")
	}
}

func TestFramesBulkAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	clip := syntheticClip(rng, 30, 8, 8, 1)
	v := encodeHelper(t, clip, 10)
	dec := NewDecoder(v, nil)
	fs, err := dec.Frames([]int{2, 5, 11, 29})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 || fs[0].Index != 2 || fs[3].Index != 29 {
		t.Fatalf("bulk decode wrong frames: %v", []int{fs[0].Index, fs[1].Index, fs[2].Index, fs[3].Index})
	}
	if _, err := dec.Frames([]int{5, 5}); err == nil {
		t.Fatal("Frames accepted non-ascending indices")
	}
	if _, err := dec.Frames([]int{7, 3}); err == nil {
		t.Fatal("Frames accepted descending indices")
	}
}

func TestPlanCostMatchesRealDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	clip := syntheticClip(rng, 60, 8, 8, 1)
	v := encodeHelper(t, clip, 12)
	for trial := 0; trial < 25; trial++ {
		// Random ascending subset.
		var idx []int
		for i := 0; i < 60; i++ {
			if rng.Intn(4) == 0 {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		want, err := PlanCost(v, idx)
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		dec := NewDecoder(v, &st)
		if _, err := dec.Frames(idx); err != nil {
			t.Fatal(err)
		}
		if got := int(st.FramesDecoded.Load()); got != want {
			t.Fatalf("trial %d: PlanCost=%d, real decoder=%d (indices %v)", trial, want, got, idx)
		}
	}
}

func TestPlanCostValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	clip := syntheticClip(rng, 10, 8, 8, 1)
	v := encodeHelper(t, clip, 5)
	if _, err := PlanCost(v, []int{3, 2}); err == nil {
		t.Fatal("PlanCost accepted descending indices")
	}
	if _, err := PlanCost(v, []int{100}); err == nil {
		t.Fatal("PlanCost accepted out-of-range index")
	}
}

func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	clip := syntheticClip(rng, 15, 16, 16, 3)
	v := encodeHelper(t, clip, 6)
	p, err := Parse(v.Data)
	if err != nil {
		t.Fatal(err)
	}
	if p.W != v.W || p.H != v.H || p.C != v.C || p.FrameCount != v.FrameCount || p.GOP != v.GOP || p.FPS != v.FPS {
		t.Fatalf("parsed metadata %+v != encoded %+v", p, v)
	}
	out, err := NewDecoder(p, nil).DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range clip.Frames {
		if !clip.Frames[i].Equal(out.Frames[i]) {
			t.Fatalf("parsed container frame %d differs", i)
		}
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	clip := syntheticClip(rng, 5, 8, 8, 1)
	v := encodeHelper(t, clip, 5)
	if _, err := Parse(v.Data[:10]); err == nil {
		t.Error("accepted truncated container")
	}
	bad := append([]byte(nil), v.Data...)
	bad[0] ^= 0xff
	if _, err := Parse(bad); err == nil {
		t.Error("accepted bad magic")
	}
	short := append([]byte(nil), v.Data[:len(v.Data)-3]...)
	if _, err := Parse(short); err == nil {
		t.Error("accepted size mismatch")
	}
}

func TestCompressionIsEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	clip := syntheticClip(rng, 30, 64, 48, 3)
	v := encodeHelper(t, clip, 10)
	raw := clip.Bytes()
	if v.Bytes() >= raw/3 {
		t.Fatalf("encoded %d bytes of %d raw; expected >3x compression on smooth content", v.Bytes(), raw)
	}
}

func TestPFramesSmallerThanIFrames(t *testing.T) {
	// On temporally coherent content, temporal prediction should beat
	// intra prediction, making P payloads smaller on average.
	rng := rand.New(rand.NewSource(15))
	clip := syntheticClip(rng, 20, 64, 48, 1)
	v := encodeHelper(t, clip, 10)
	var iBytes, pBytes, iN, pN int
	for i := 0; i < v.FrameCount; i++ {
		start := v.index[i].offset
		sz := int(uint32(v.Data[start]) | uint32(v.Data[start+1])<<8 | uint32(v.Data[start+2])<<16 | uint32(v.Data[start+3])<<24)
		if v.index[i].ftype == IFrame {
			iBytes += sz
			iN++
		} else {
			pBytes += sz
			pN++
		}
	}
	if iN == 0 || pN == 0 {
		t.Fatal("missing frame types")
	}
	if float64(pBytes)/float64(pN) >= float64(iBytes)/float64(iN) {
		t.Fatalf("avg P payload %d >= avg I payload %d; temporal prediction ineffective", pBytes/pN, iBytes/iN)
	}
}

func TestFrameTypeString(t *testing.T) {
	if IFrame.String() != "I" || PFrame.String() != "P" {
		t.Fatal("FrameType String mismatch")
	}
	if FrameType(9).String() == "I" {
		t.Fatal("unknown FrameType stringifies as I")
	}
}

// Property: for any GOP size and target frame, DecodeCost is between 1 and
// GOP, and PlanCost of a singleton equals DecodeCost.
func TestQuickDecodeCostBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	clip := syntheticClip(rng, 48, 8, 8, 1)
	f := func(gopRaw, idxRaw uint8) bool {
		gop := int(gopRaw%15) + 1
		idx := int(idxRaw) % 48
		v, err := Encode(clip, EncodeParams{GOP: gop, FPS: 30})
		if err != nil {
			return false
		}
		cost, err := v.DecodeCost(idx)
		if err != nil || cost < 1 || cost > gop {
			return false
		}
		pc, err := PlanCost(v, []int{idx})
		return err == nil && pc == cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: round trip is lossless for arbitrary noise content too.
func TestQuickRoundTripNoise(t *testing.T) {
	f := func(seed int64, gopRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		gop := int(gopRaw%8) + 1
		frames := make([]*frame.Frame, 6)
		for i := range frames {
			fr := frame.New(12, 10, 2)
			rng.Read(fr.Pix)
			frames[i] = fr
		}
		clip, _ := frame.NewClip(frames)
		v, err := Encode(clip, EncodeParams{GOP: gop, FPS: 24})
		if err != nil {
			return false
		}
		out, err := NewDecoder(v, nil).DecodeAll()
		if err != nil {
			return false
		}
		for i := range frames {
			if !frames[i].Equal(out.Frames[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	clip := syntheticClip(rng, 30, 128, 96, 3)
	b.SetBytes(int64(clip.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(clip, EncodeParams{GOP: 10, FPS: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	clip := syntheticClip(rng, 30, 128, 96, 3)
	v, _ := Encode(clip, EncodeParams{GOP: 10, FPS: 30})
	b.SetBytes(int64(clip.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDecoder(v, nil).DecodeAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	clip := syntheticClip(rng, 60, 128, 96, 3)
	v, _ := Encode(clip, EncodeParams{GOP: 15, FPS: 30})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := NewDecoder(v, nil)
		if _, err := dec.Frame(rng.Intn(60)); err != nil {
			b.Fatal(err)
		}
	}
}
