package codec

import (
	"math/rand"
	"testing"

	"sand/internal/frame"
)

// benchVideo encodes a deterministic synthetic clip for decode benchmarks.
func benchVideo(b *testing.B, frames, w, h int) *Video {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	fs := make([]*frame.Frame, frames)
	for i := range fs {
		f := frame.New(w, h, 3)
		for p := range f.Pix {
			f.Pix[p] = byte(int(f.Pix[p]) + rng.Intn(7) + i)
		}
		fs[i] = f
	}
	clip, err := frame.NewClip(fs)
	if err != nil {
		b.Fatal(err)
	}
	v, err := Encode(clip, EncodeParams{GOP: 30, FPS: 30})
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkCodecRandomAccess measures the sparse-sampling hot path: a
// fresh decoder performing strided random access, paying full decode
// amplification each iteration. Allocations per op track the per-frame
// flate-reader and scratch-frame churn the buffer-pooling layer removes.
func BenchmarkCodecRandomAccess(b *testing.B) {
	v := benchVideo(b, 120, 64, 64)
	indices := []int{5, 17, 42, 63, 88, 110}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(v, nil)
		out, err := d.Frames(indices)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(indices) {
			b.Fatalf("decoded %d frames, want %d", len(out), len(indices))
		}
	}
}
