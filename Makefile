# Tier-1 verification gate: vet + build + race-clean tests.
check:
	./scripts/check.sh

# Fast iteration: build + tests without the race detector.
test:
	go build ./...
	go test ./...

# Dataplane fuzzing (bounded; extend -fuzztime for longer campaigns).
fuzz:
	go test -run=xxx -fuzz=FuzzDecodeRequest -fuzztime=30s ./internal/viewserver/

# Regenerate the paper's evaluation tables.
bench:
	go test -bench=. -benchmem .

.PHONY: check test fuzz bench
