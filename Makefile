# Tier-1 verification gate: vet + build + race-clean tests.
check:
	./scripts/check.sh

# Fast iteration: build + tests without the race detector.
test:
	go build ./...
	go test ./...

# Dataplane fuzzing (bounded; extend -fuzztime for longer campaigns).
fuzz:
	go test -run=xxx -fuzz=FuzzDecodeRequest -fuzztime=30s ./internal/viewserver/

# Hot-path benchmarks: writes BENCH_hotpath.json (ns/op, B/op, allocs/op
# vs the pre-overhaul baseline). BENCHTIME=200x make bench for more laps.
bench:
	./scripts/bench.sh $(BENCHTIME)

# Store-contention benchmarks: writes BENCH_storage.json (sharded vs
# unsharded mixed Put/Get). BENCHTIME=5000x make bench-storage for more.
bench-storage:
	./scripts/bench_storage.sh $(BENCHTIME)

# Zero-copy dataplane benchmarks: writes BENCH_dataplane.json (pinned
# writev serving vs the copying path at 1/4/16 clients).
# BENCHTIME=1000x make bench-dataplane for more laps.
bench-dataplane:
	./scripts/bench_dataplane.sh $(BENCHTIME)

# Overlap-aware reuse benchmark: writes BENCH_reuse.json (superset-crop
# reuse on vs off over four overlapping views; fails under 1.5x).
# BENCHTIME=500x make bench-reuse for more laps.
bench-reuse:
	./scripts/bench_reuse.sh $(BENCHTIME)

# Closed-loop scheduling benchmark: writes BENCH_sched.json (admission
# control on vs off under premat overload, SLO bookkeeping overhead,
# fixed vs adaptive read-ahead; see DESIGN.md §11 for the gates).
bench-sched:
	./scripts/bench_sched.sh

# One traced quickstart run, validated (see OBSERVABILITY.md).
trace-smoke:
	./scripts/trace_smoke.sh

# Boot a 3-node fleet on loopback, drain and kill a node mid-epoch,
# assert completion + per-node /metrics labels (see DESIGN.md "Fleet").
fleet-smoke:
	./scripts/fleet_smoke.sh

# Run the scenario corpus twice and fail unless the JSON reports are
# byte-identical across runs (see SCENARIOS.md).
scenarios:
	./scripts/scenario_smoke.sh

.PHONY: check test fuzz bench bench-storage bench-dataplane bench-reuse bench-sched trace-smoke fleet-smoke scenarios
