#!/usr/bin/env bash
# Doc gate: every package must carry a package comment ("// Package x
# ...") and the tree must be gofmt-clean. Cheap, grep-based, no deps.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in internal/* cmd/* examples/*; do
    [ -d "$dir" ] || continue
    pkg="$(basename "$dir")"
    if [ "$(dirname "$dir")" = "internal" ]; then
        want="^// Package ${pkg} "
    else
        # main packages document the binary instead of a package name.
        want="^// "
    fi
    if ! grep -lqE "$want" "$dir"/*.go 2>/dev/null; then
        echo "doccheck: $dir has no package doc comment" >&2
        fail=1
    fi
done

unformatted="$(gofmt -l cmd examples internal)"
if [ -n "$unformatted" ]; then
    echo "doccheck: gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

exit $fail
