#!/usr/bin/env bash
# Fleet smoke test: boot a 3-node fleet on loopback through the HTTP
# registry, drain one node mid-epoch, and assert (a) the epoch
# completes byte-for-byte against the single-node baseline and (b) the
# merged /metrics exposition carries every node's own label. The
# distributed example already exits non-zero on any of those failures;
# this script re-asserts the observable output so a silent regression
# in the example's own checks still fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== 3-node fleet, drain one mid-epoch"
go run ./examples/distributed -nodes 3 -fail drain | tee "$tmp/out.txt"

grep -q 'OK: epoch completed byte-for-byte through the failure' "$tmp/out.txt" ||
  { echo "fleet_smoke: epoch did not complete"; exit 1; }
for node in node0 node1 node2; do
  grep -q "fleet /metrics carries node=\"$node\" series" "$tmp/out.txt" ||
    { echo "fleet_smoke: /metrics lost $node"; exit 1; }
done
grep -q 'healthy -> draining' "$tmp/out.txt" ||
  { echo "fleet_smoke: registry never recorded the drain"; exit 1; }

echo "== 3-node fleet, kill one mid-epoch (failover path)"
go run ./examples/distributed -nodes 3 -fail kill >"$tmp/kill.txt"
grep -q 'OK: epoch completed byte-for-byte through the failure' "$tmp/kill.txt" ||
  { echo "fleet_smoke: epoch did not survive the kill"; exit 1; }
grep -q 'suspect -> dead' "$tmp/kill.txt" ||
  { echo "fleet_smoke: killed node never aged to dead"; exit 1; }

echo "fleet_smoke: ok"
