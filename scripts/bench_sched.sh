#!/usr/bin/env bash
# Closed-loop scheduling benchmark harness: runs the sandbench "sched"
# experiment (premat overload with admission control on/off, an
# uncontended real-engine run with the SLO armed/disarmed, and
# sequential remote reads with fixed vs adaptive read-ahead) and writes
# BENCH_sched.json at the repo root from its METRIC lines. Gates:
#
#   - overload improvement >= 2x   (demand queue-wait p99, steady state)
#   - uncontended overhead <= 1.15 (admission bookkeeping must be free)
#   - adaptive hit rate >= fixed - 0.05
#   - stalled client stays inside the prefetch byte budget bound
#
# Usage: scripts/bench_sched.sh
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_sched.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== sandbench -exp sched"
go run ./cmd/sandbench -exp sched | tee "$TMP"

awk '
$1 == "METRIC" { m[$2] = $3 }
END {
  need = "sched.overload.static_p99_ns sched.overload.closed_p99_ns sched.overload.improvement " \
         "sched.uncontended.off_ns sched.uncontended.on_ns sched.uncontended.overhead " \
         "sched.readahead.fixed_hitrate sched.readahead.adaptive_hitrate " \
         "sched.readahead.stalled_max_pinned sched.readahead.stalled_bounded"
  n = split(need, keys, " ")
  for (i = 1; i <= n; i++) {
    if (!(keys[i] in m)) { print "bench_sched: missing metric " keys[i] > "/dev/stderr"; exit 1 }
  }
  printf "{\n"
  printf "  \"overload\": {\"static_p99_ns\": %d, \"closed_p99_ns\": %d, \"improvement\": %.2f},\n", \
    m["sched.overload.static_p99_ns"], m["sched.overload.closed_p99_ns"], m["sched.overload.improvement"]
  printf "  \"uncontended\": {\"off_ns\": %d, \"on_ns\": %d, \"overhead\": %.3f},\n", \
    m["sched.uncontended.off_ns"], m["sched.uncontended.on_ns"], m["sched.uncontended.overhead"]
  printf "  \"readahead\": {\"fixed_hitrate\": %.4f, \"adaptive_hitrate\": %.4f, \"stalled_max_pinned\": %d, \"stalled_bounded\": %s}\n", \
    m["sched.readahead.fixed_hitrate"], m["sched.readahead.adaptive_hitrate"], \
    m["sched.readahead.stalled_max_pinned"], (m["sched.readahead.stalled_bounded"] == 1 ? "true" : "false")
  printf "}\n"
  if (m["sched.overload.improvement"] < 2.0) {
    printf "bench_sched: overload improvement %.2fx below the 2x floor\n", m["sched.overload.improvement"] > "/dev/stderr"; exit 1
  }
  if (m["sched.uncontended.overhead"] > 1.15) {
    printf "bench_sched: uncontended overhead %.3f above the 1.15 ceiling\n", m["sched.uncontended.overhead"] > "/dev/stderr"; exit 1
  }
  if (m["sched.readahead.adaptive_hitrate"] < m["sched.readahead.fixed_hitrate"] - 0.05) {
    printf "bench_sched: adaptive hit rate %.4f trails fixed %.4f by more than 0.05\n", \
      m["sched.readahead.adaptive_hitrate"], m["sched.readahead.fixed_hitrate"] > "/dev/stderr"; exit 1
  }
  if (m["sched.readahead.stalled_bounded"] != 1) {
    print "bench_sched: stalled client exceeded the prefetch byte bound" > "/dev/stderr"; exit 1
  }
}
' "$TMP" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
