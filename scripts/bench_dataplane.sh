#!/usr/bin/env bash
# Zero-copy dataplane benchmark harness: runs BenchmarkViewServerZeroCopy
# (1 MiB pinned batch preads over loopback TCP, zerocopy vs ForceCopy, at
# 1/4/16 concurrent clients) and writes BENCH_dataplane.json at the repo
# root. The JSON carries ns/op, B/op, and wire MB/s per cell plus two
# headline figures at 16 clients: the per-request B/op reduction
# (zero-copy must shed >= 50% of the copying path's allocations) and the
# MB/s ratio (zero-copy must not be slower than copying).
#
# Usage: scripts/bench_dataplane.sh [benchtime]   (default 300x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-300x}"
OUT="BENCH_dataplane.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== go test -bench (viewserver dataplane, -benchtime=$BENCHTIME)"
go test -run=xxx -bench='BenchmarkViewServerZeroCopy' -benchtime="$BENCHTIME" -benchmem . | tee "$TMP"

# Parse `BenchmarkViewServerZeroCopy/mode=M/clients=C-N  iters  ns/op  MB/s  B/op  allocs/op`.
awk '
/^BenchmarkViewServerZeroCopy\// && /ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  split(name, parts, "/")
  sub(/^mode=/, "", parts[2]); sub(/^clients=/, "", parts[3])
  mode = parts[2]; c = parts[3]
  ns[mode "/" c] = $3; mbs[mode "/" c] = $5; bop[mode "/" c] = $7; aop[mode "/" c] = $9
  if (!(mode in mseen)) { morder[mn++] = mode; mseen[mode] = 1 }
  if (!(c in cseen)) { corder[cn++] = c; cseen[c] = 1 }
}
END {
  printf "{\n  \"benchmark\": \"BenchmarkViewServerZeroCopy\",\n  \"results\": [\n"
  first = 1
  for (i = 0; i < mn; i++) for (j = 0; j < cn; j++) {
    k = morder[i] "/" corder[j]
    if (!(k in ns)) continue
    if (!first) printf ",\n"
    first = 0
    printf "    {\"mode\": \"%s\", \"clients\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
      morder[i], corder[j], ns[k], mbs[k], bop[k], aop[k]
  }
  zc = bop["zerocopy/16"]; cp = bop["copy/16"]
  reduction = (cp > 0) ? 1 - zc / cp : 0
  zmbs = mbs["zerocopy/16"]; cmbs = mbs["copy/16"]
  ratio = (cmbs > 0) ? zmbs / cmbs : 0
  printf "\n  ],\n  \"b_per_op_reduction_16_clients\": %.4f,\n  \"mb_per_s_ratio_16_clients\": %.2f\n}\n", reduction, ratio
  if (reduction < 0.5) {
    printf "bench_dataplane: B/op reduction %.1f%% at 16 clients is below the 50%% floor\n", reduction * 100 > "/dev/stderr"
    exit 1
  }
  if (ratio < 1) {
    printf "bench_dataplane: zero-copy MB/s is %.2fx the copying path at 16 clients (must not regress)\n", ratio > "/dev/stderr"
    exit 1
  }
}
' "$TMP" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
