#!/usr/bin/env bash
# Storage-contention benchmark harness: runs BenchmarkStoreContention
# (parallel mixed Put/Get with eviction active, 1/4/16 goroutines at
# 1 shard vs 16 shards) and writes BENCH_storage.json at the repo root.
# The JSON carries ns/op per configuration plus the headline speedup at
# 16 goroutines (sharded vs unsharded), which the sharded-store work
# requires to be >= 2x.
#
# Usage: scripts/bench_storage.sh [benchtime]   (default 2000x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2000x}"
OUT="BENCH_storage.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== go test -bench (store contention, -benchtime=$BENCHTIME)"
go test -run=xxx -bench='BenchmarkStoreContention' -benchtime="$BENCHTIME" ./internal/storage/ | tee "$TMP"

# Parse `BenchmarkStoreContention/shards=S/g=G-N  iters  ns/op` lines.
awk '
/^BenchmarkStoreContention\// && /ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  split(name, parts, "/")
  sub(/^shards=/, "", parts[2]); sub(/^g=/, "", parts[3])
  shards = parts[2]; g = parts[3]
  ns[shards "/" g] = $3
  if (!(shards in sseen)) { sorder[sn++] = shards; sseen[shards] = 1 }
  if (!(g in gseen)) { gorder[gn++] = g; gseen[g] = 1 }
}
END {
  printf "{\n  \"benchmark\": \"BenchmarkStoreContention\",\n  \"results\": [\n"
  first = 1
  for (i = 0; i < sn; i++) for (j = 0; j < gn; j++) {
    k = sorder[i] "/" gorder[j]
    if (!(k in ns)) continue
    if (!first) printf ",\n"
    first = 0
    printf "    {\"shards\": %s, \"goroutines\": %s, \"ns_per_op\": %s}", sorder[i], gorder[j], ns[k]
  }
  base = ns["1/16"]; sharded = ns["16/16"]
  speedup = (base > 0 && sharded > 0) ? base / sharded : 0
  printf "\n  ],\n  \"speedup_16_goroutines\": %.2f\n}\n", speedup
  if (speedup < 2) {
    printf "bench_storage: speedup %.2fx at 16 goroutines is below the 2x floor\n", speedup > "/dev/stderr"
    exit 1
  }
}
' "$TMP" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
