#!/usr/bin/env bash
# Trace smoke test: run one traced quickstart (3 tight-budget epochs),
# then validate the Chrome trace JSON parses and carries the event
# kinds the engine promises (per-frame spans and a scheduler
# mode-switch among them). Validation is a stdlib-only Go program so
# the gate needs nothing beyond the toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== traced quickstart"
go run ./examples/quickstart -trace-out "$tmp/trace.json" >"$tmp/out.txt"

cat > "$tmp/validate.go" <<'EOF'
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		panic(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Args map[string]any  `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		panic(fmt.Sprintf("trace is not valid trace_event JSON: %v", err))
	}
	kinds := map[string]int{}
	for _, e := range trace.TraceEvents {
		kinds[e.Cat+"."+e.Name]++
	}
	for _, want := range []string{
		"sched.enqueue", "sched.dequeue", "sched.task", "sched.mode_switch",
		"core.batch", "core.sample", "core.frame",
		"storage.watermark", "storage.evict_pass",
	} {
		if kinds[want] == 0 {
			panic(fmt.Sprintf("trace has no %s events; kinds: %v", want, kinds))
		}
	}
	fmt.Printf("trace ok: %d events, %d frame spans, %d mode switches\n",
		len(trace.TraceEvents), kinds["core.frame"], kinds["sched.mode_switch"])
}
EOF
go run "$tmp/validate.go" "$tmp/trace.json"
