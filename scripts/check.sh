#!/usr/bin/env bash
# Tier-1 gate: vet, build, and race-test the whole tree. Run as
# `make check` or directly. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== doc + gofmt check"
./scripts/doccheck.sh

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== hot-path benchmark smoke (1 iteration)"
go test -run=xxx -bench='BenchmarkMaterializeSample$' -benchtime=1x ./internal/core/ >/dev/null
go test -run=xxx -bench='BenchmarkCodecRandomAccess$' -benchtime=1x ./internal/codec/ >/dev/null
go test -run=xxx -bench='BenchmarkAugmentPipeline$' -benchtime=1x ./internal/augment/ >/dev/null
go test -run=xxx -bench='BenchmarkStoreRoundTrip$' -benchtime=1x ./internal/storage/ >/dev/null
go test -run=xxx -bench='BenchmarkStoreContention' -benchtime=1x ./internal/storage/ >/dev/null

echo "== quickstart shard smoke (1 shard vs 16 shards)"
go run ./examples/quickstart -store-shards 1 >/dev/null
go run ./examples/quickstart -store-shards 16 >/dev/null

echo "== overlap-aware reuse smoke (superset hits + byte-identical output)"
# The four-view overlapping-crop quickstart must produce byte-identical
# batches with superset reuse on and off, and the reuse path must
# actually fire (nonzero superset hits) — see DESIGN.md §9.
REUSE_ON="$(go run ./examples/quickstart -overlap | grep -E '^(batch digest|reuse):')"
REUSE_OFF="$(go run ./examples/quickstart -overlap -reuse=false | grep -E '^(batch digest|reuse):')"
DIG_ON="$(grep '^batch digest:' <<<"$REUSE_ON")"
DIG_OFF="$(grep '^batch digest:' <<<"$REUSE_OFF")"
if [ -z "$DIG_ON" ] || [ "$DIG_ON" != "$DIG_OFF" ]; then
	echo "reuse smoke: output digests differ between -reuse=true and -reuse=false" >&2
	echo "  on:  $DIG_ON" >&2
	echo "  off: $DIG_OFF" >&2
	exit 1
fi
if ! grep '^reuse:' <<<"$REUSE_ON" | grep -q 'superset_hits=[1-9]'; then
	echo "reuse smoke: no superset hits on the overlapping-view task" >&2
	grep '^reuse:' <<<"$REUSE_ON" >&2
	exit 1
fi
echo "reuse smoke: identical digests; $(grep '^reuse:' <<<"$REUSE_ON")"

echo "== zero-copy dataplane smoke (8 shards, 1 MiB budget)"
# Tight budget forces eviction passes to run while pinned batches are in
# flight; the example fails if any remote byte differs from local or if
# no response went out by reference.
go run ./examples/remote -store-shards 8 -mem-budget-mb 1 >/dev/null

echo "== closed-loop scheduling smoke (admission control + adaptive read-ahead gates)"
# Runs the sched experiment end to end: admission control must engage
# under premat overload and beat the static baseline >= 2x on demand
# p99, cost free when uncontended, and adaptive read-ahead must match
# the fixed depth while bounding a stalled client — see DESIGN.md §11.
./scripts/bench_sched.sh >/dev/null

echo "== trace smoke"
./scripts/trace_smoke.sh

echo "== fleet smoke (3 nodes, drain + kill mid-epoch)"
./scripts/fleet_smoke.sh

echo "== scenario corpus smoke (validate + run twice + determinism diff)"
./scripts/scenario_smoke.sh

echo "check: all green"
