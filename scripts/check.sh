#!/usr/bin/env bash
# Tier-1 gate: vet, build, and race-test the whole tree. Run as
# `make check` or directly. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: all green"
