#!/usr/bin/env bash
# Tier-1 gate: vet, build, and race-test the whole tree. Run as
# `make check` or directly. Every PR must leave this green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== doc + gofmt check"
./scripts/doccheck.sh

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== hot-path benchmark smoke (1 iteration)"
go test -run=xxx -bench='BenchmarkMaterializeSample$' -benchtime=1x ./internal/core/ >/dev/null
go test -run=xxx -bench='BenchmarkCodecRandomAccess$' -benchtime=1x ./internal/codec/ >/dev/null
go test -run=xxx -bench='BenchmarkAugmentPipeline$' -benchtime=1x ./internal/augment/ >/dev/null
go test -run=xxx -bench='BenchmarkStoreRoundTrip$' -benchtime=1x ./internal/storage/ >/dev/null
go test -run=xxx -bench='BenchmarkStoreContention' -benchtime=1x ./internal/storage/ >/dev/null

echo "== quickstart shard smoke (1 shard vs 16 shards)"
go run ./examples/quickstart -store-shards 1 >/dev/null
go run ./examples/quickstart -store-shards 16 >/dev/null

echo "== zero-copy dataplane smoke (8 shards, 1 MiB budget)"
# Tight budget forces eviction passes to run while pinned batches are in
# flight; the example fails if any remote byte differs from local or if
# no response went out by reference.
go run ./examples/remote -store-shards 8 -mem-budget-mb 1 >/dev/null

echo "== trace smoke"
./scripts/trace_smoke.sh

echo "== fleet smoke (3 nodes, drain + kill mid-epoch)"
./scripts/fleet_smoke.sh

echo "check: all green"
