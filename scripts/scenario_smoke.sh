#!/usr/bin/env bash
# Scenario-corpus smoke: lint every scenario file, run the whole corpus
# with reports, then run it a second time and require the two report
# trees to be byte-identical — the harness's determinism contract
# (same scenario + same seed => same report bytes) is enforced on every
# `make check`, not just claimed in SCENARIOS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/sandsim" ./cmd/sandsim

echo "== sandsim validate scenarios/"
"$tmp/sandsim" validate scenarios

echo "== sandsim run scenarios/ (first pass)"
"$tmp/sandsim" run -report-dir "$tmp/rep1" scenarios

echo "== sandsim run scenarios/ (replay pass)"
"$tmp/sandsim" run -report-dir "$tmp/rep2" scenarios >/dev/null

echo "== determinism: diffing the two report trees"
if ! diff -r "$tmp/rep1" "$tmp/rep2"; then
  echo "scenario_smoke: replay produced different report bytes" >&2
  exit 1
fi

echo "scenario_smoke: ok ($(ls "$tmp"/rep1/*.report.json | wc -l | tr -d ' ') deterministic reports)"
