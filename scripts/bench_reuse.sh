#!/usr/bin/env bash
# Overlap-aware reuse benchmark harness. Two workloads:
#
#   BenchmarkOverlappingViews      — four overlapping crop views inside one
#                                    sample, superset reuse on ("reuse") vs
#                                    off ("off"); gate >= 1.5x.
#   BenchmarkBatchOverlappingViews — four single-chain samples per batch
#                                    whose crops overlap, batch-scoped
#                                    planning ("batch") vs per-sample-only
#                                    planning ("sample"); gate >= 2x.
#
# Writes BENCH_reuse.json at the repo root with ns/op, B/op, allocs/op per
# arm plus the speedups. Both rewrites are exact (byte-identical output,
# asserted by TestSupersetByteIdentical / TestBatchScopeByteIdentical and
# the check.sh smokes), so the speedups are free accuracy-wise; the gates
# below fail the run if either ever regresses.
#
# Usage: scripts/bench_reuse.sh [benchtime]   (default 200x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-200x}"
OUT="BENCH_reuse.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== go test -bench (overlapping views + batch overlap, -benchtime=$BENCHTIME)"
go test -run=xxx -bench='BenchmarkOverlappingViews|BenchmarkBatchOverlappingViews' -benchmem -benchtime="$BENCHTIME" ./internal/core/ | tee "$TMP"

awk '
/^BenchmarkOverlappingViews\/reuse/       { rns = $3; rb = $5; ra = $7 }
/^BenchmarkOverlappingViews\/off/         { ons = $3; ob = $5; oa = $7 }
/^BenchmarkBatchOverlappingViews\/batch/  { bns = $3; bb = $5; ba = $7 }
/^BenchmarkBatchOverlappingViews\/sample/ { sns = $3; sb = $5; sa = $7 }
END {
  if (rns == "" || ons == "" || bns == "" || sns == "") { print "bench_reuse: missing benchmark output" > "/dev/stderr"; exit 1 }
  speedup = ons / rns
  xspeedup = sns / bns
  printf "{\n"
  printf "  \"benchmark\": \"BenchmarkOverlappingViews\",\n"
  printf "  \"reuse\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", rns, rb, ra
  printf "  \"off\":   {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", ons, ob, oa
  printf "  \"speedup\": %.2f,\n", speedup
  printf "  \"batch_overlap_benchmark\": \"BenchmarkBatchOverlappingViews\",\n"
  printf "  \"batch\":  {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", bns, bb, ba
  printf "  \"sample\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", sns, sb, sa
  printf "  \"batch_speedup\": %.2f\n", xspeedup
  printf "}\n"
  if (speedup < 1.5) { printf "bench_reuse: superset speedup %.2fx below the 1.5x floor\n", speedup > "/dev/stderr"; exit 1 }
  if (xspeedup < 2.0) { printf "bench_reuse: batch-overlap speedup %.2fx below the 2x floor\n", xspeedup > "/dev/stderr"; exit 1 }
}
' "$TMP" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
