#!/usr/bin/env bash
# Overlap-aware reuse benchmark harness: runs BenchmarkOverlappingViews
# with the superset-crop path enabled ("reuse") and disabled ("off") and
# writes BENCH_reuse.json at the repo root with ns/op, B/op, allocs/op
# per arm plus the speedup. The reuse rewrite is exact (byte-identical
# output, asserted by TestSupersetByteIdentical and the check.sh smoke),
# so the speedup is free accuracy-wise; the gate below fails the run if
# it ever regresses under 1.5x.
#
# Usage: scripts/bench_reuse.sh [benchtime]   (default 200x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-200x}"
OUT="BENCH_reuse.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== go test -bench (overlapping views, -benchtime=$BENCHTIME)"
go test -run=xxx -bench='BenchmarkOverlappingViews' -benchmem -benchtime="$BENCHTIME" ./internal/core/ | tee "$TMP"

awk '
/^BenchmarkOverlappingViews\/reuse/  { rns = $3; rb = $5; ra = $7 }
/^BenchmarkOverlappingViews\/off/    { ons = $3; ob = $5; oa = $7 }
END {
  if (rns == "" || ons == "") { print "bench_reuse: missing benchmark output" > "/dev/stderr"; exit 1 }
  speedup = ons / rns
  printf "{\n"
  printf "  \"benchmark\": \"BenchmarkOverlappingViews\",\n"
  printf "  \"reuse\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", rns, rb, ra
  printf "  \"off\":   {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", ons, ob, oa
  printf "  \"speedup\": %.2f\n", speedup
  printf "}\n"
  if (speedup < 1.5) { printf "bench_reuse: speedup %.2fx below the 1.5x floor\n", speedup > "/dev/stderr"; exit 1 }
}
' "$TMP" > "$OUT"

echo "wrote $OUT"
cat "$OUT"
