#!/usr/bin/env bash
# Hot-path benchmark harness: runs the four -benchmem benchmarks covering
# the materialization hot path and writes BENCH_hotpath.json at the repo
# root with ns/op, B/op and allocs/op per benchmark, alongside the frozen
# pre-overhaul baseline (captured on the same machine class before the
# GOP-cache/buffer-pool work landed).
#
# Usage: scripts/bench.sh [benchtime]   (default 100x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-100x}"
OUT="BENCH_hotpath.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "== go test -bench (hot path, -benchtime=$BENCHTIME)"
go test -run=xxx -bench='BenchmarkMaterializeSample$' -benchmem -benchtime="$BENCHTIME" ./internal/core/ | tee -a "$TMP"
go test -run=xxx -bench='BenchmarkCodecRandomAccess$' -benchmem -benchtime="$BENCHTIME" ./internal/codec/ | tee -a "$TMP"
go test -run=xxx -bench='BenchmarkAugmentPipeline$' -benchmem -benchtime="$BENCHTIME" ./internal/augment/ | tee -a "$TMP"
go test -run=xxx -bench='BenchmarkStoreRoundTrip$' -benchmem -benchtime="$BENCHTIME" ./internal/storage/ | tee -a "$TMP"

# Parse `BenchmarkX-N  iters  ns/op  B/op  allocs/op` lines into JSON.
awk '
BEGIN {
  # Pre-overhaul baseline: 200 iterations, single-CPU Xeon 2.10GHz.
  base["BenchmarkMaterializeSample"] = "449122 596285 360"
  base["BenchmarkCodecRandomAccess"] = "11123493 4374117 849"
  base["BenchmarkAugmentPipeline"]   = "703461 328032 72"
  base["BenchmarkStoreRoundTrip"]    = "293819 880589 34"
  n = 0
}
/^Benchmark/ && /ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  ns[name] = $3; bytes[name] = $5; allocs[name] = $7
  if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
  printf "{\n  \"benchmarks\": [\n"
  for (i = 0; i < n; i++) {
    name = order[i]
    split(base[name], b, " ")
    printf "    {\n"
    printf "      \"name\": \"%s\",\n", name
    printf "      \"baseline\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", b[1], b[2], b[3]
    printf "      \"current\":  {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}\n", ns[name], bytes[name], allocs[name]
    printf "    }%s\n", (i < n-1 ? "," : "")
  }
  printf "  ]\n}\n"
}
' "$TMP" > "$OUT"

echo "wrote $OUT"
cat "$OUT"

# Storage-contention companion: BENCH_storage.json (sharded vs unsharded).
./scripts/bench_storage.sh
