// Distributed training through the fleet control plane: N real nodes
// each run a full SAND service for the same configuration, serve their
// view filesystems over TCP, and announce themselves to an HTTP
// registry. The consumer mounts the whole fleet through one
// fleet.Router — every batch open is rendezvous-hashed to a node — and
// trains straight through a mid-epoch node failure: the router fails
// the open over to a replica and, because views are deterministic from
// (config, seed), the epoch finishes byte-for-byte identical to a
// single-node baseline.
//
// Each node owns a private obs registry (no shared-process collisions);
// the fleet collector scrapes every node's /metrics.json and serves one
// merged /metrics with per-node labels from the registry process.
//
//	go run ./examples/distributed                  # 3 nodes, kill one mid-epoch
//	go run ./examples/distributed -fail drain      # drain instead of kill
//	go run ./examples/distributed -nodes 5 -fail none
//
// The process exits non-zero if the epoch cannot complete, any batch
// differs from the baseline, or the fleet metrics lose a node's series.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/fleet"
	"sand/internal/obs"
	"sand/internal/vfs"
	"sand/internal/viewserver"
)

// node is one serving member of the fleet: its own service, view
// server, obs registry, metrics endpoint, and heartbeat loop.
type node struct {
	name        string
	reg         *obs.Registry
	svc         *core.Service
	srv         *viewserver.Server
	addr        string
	metricsStop func() error
	hb          *fleet.Heartbeater
	down        bool
}

func (n *node) kill() {
	if n.down {
		return
	}
	n.down = true
	n.hb.Stop()
	n.srv.Close()
	_ = n.metricsStop()
	n.svc.Close()
}

func startNode(i int, ds *dataset.Dataset, task *config.Task, epochs int, registryAddr string) (*node, error) {
	reg := obs.New() // private per node: the collector merges, nothing collides
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 3,
		TotalEpochs: epochs,
		Workers:     2,
		Coordinate:  true,
		Seed:        5,
		Obs:         reg,
	})
	if err != nil {
		return nil, err
	}
	srv := viewserver.New(svc.FS(), viewserver.Options{ReadAhead: 1, Obs: reg})
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	maddr, mstop, err := reg.StartServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n := &node{
		name:        fmt.Sprintf("node%d", i),
		reg:         reg,
		svc:         svc,
		srv:         srv,
		addr:        addr.String(),
		metricsStop: mstop,
	}
	n.hb, err = fleet.StartHeartbeater(fleet.NewRegistryClient(registryAddr), fleet.NodeInfo{
		Name:        n.name,
		Addr:        n.addr,
		MetricsAddr: maddr.String(),
		Fingerprint: svc.Fingerprint(),
		Capacity:    1,
	})
	if err != nil {
		return nil, err
	}
	return n, nil
}

func main() {
	nNodes := flag.Int("nodes", 3, "fleet size")
	epochs := flag.Int("epochs", 3, "epochs to train")
	failMode := flag.String("fail", "kill", "mid-epoch failure to inject: kill | drain | none")
	flag.Parse()
	if *nNodes < 2 && *failMode != "none" {
		log.Fatal("distributed: need at least 2 nodes to survive a failure")
	}

	ds, err := dataset.Kinetics400.Miniature(8, 64, 64, 60, 33)
	if err != nil {
		log.Fatal(err)
	}
	task := &config.Task{
		Tag:         "ddp",
		Source:      config.SourceFile,
		DatasetPath: "/dataset/kinetics-mini",
		Sampling:    config.Sampling{VideosPerBatch: 2, FramesPerVideo: 6, FrameStride: 2, SamplesPerVideo: 1},
		Stages: []config.Stage{{
			Name: "resize", Type: config.BranchSingle,
			Inputs: []string{"frame"}, Outputs: []string{"a0"},
			Ops: []config.OpSpec{{Op: "resize", Params: map[string]any{"shape": []any{48, 48}}}},
		}},
	}

	// Control plane: registry + collector behind one HTTP listener.
	registry := fleet.NewRegistry(fleet.RegistryOptions{
		SuspectAfter: 400 * time.Millisecond,
		DeadAfter:    1200 * time.Millisecond,
	})
	defer registry.Close()
	collector := fleet.NewCollector(fleet.CollectorOptions{Lister: fleet.LocalAnnouncer{R: registry}})
	registry.AttachCollector(collector)
	regAddr, regStop, err := registry.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer regStop()
	fmt.Printf("fleet registry on http://%s (try: sandctl -registry %s nodes)\n", regAddr, regAddr)

	// Dataplane: N real nodes, announced over HTTP.
	nodes := make([]*node, *nNodes)
	for i := range nodes {
		if nodes[i], err = startNode(i, ds, task, *epochs, regAddr.String()); err != nil {
			log.Fatal(err)
		}
		defer nodes[i].kill()
		fmt.Printf("  %s serving on %s\n", nodes[i].name, nodes[i].addr)
	}

	// Baseline: one local service with the same (config, seed). Fleet
	// reads must reproduce these bytes exactly, failover or not.
	baseReg := obs.New()
	base, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 3,
		TotalEpochs: *epochs,
		Workers:     2,
		Coordinate:  true,
		Seed:        5,
		Obs:         baseReg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer base.Close()

	// Consumer: one router mount over the registry, standard loader on top.
	ctl := fleet.NewRegistryClient(regAddr.String())
	router := fleet.NewRouter(ctl, fleet.RouterOptions{RefreshEvery: 100 * time.Millisecond})
	defer router.Shutdown()

	victim := nodes[len(nodes)-1]
	failEpoch := 1
	if *failMode == "none" || *epochs < 2 {
		failEpoch = -1
	}
	steps, failovers := 0, router.Stats().Failovers
	for epoch := 0; epoch < *epochs; epoch++ {
		iters, err := base.ItersInEpoch(task.Tag, epoch)
		if err != nil {
			log.Fatal(err)
		}
		for iter := 0; iter < iters; iter++ {
			if epoch == failEpoch && iter == iters/2 {
				switch *failMode {
				case "kill":
					fmt.Printf("\n!! killing %s mid-epoch (step %d/%d of epoch %d)\n\n", victim.name, iter, iters, epoch)
					victim.kill()
				case "drain":
					fmt.Printf("\n!! draining %s mid-epoch (step %d/%d of epoch %d)\n\n", victim.name, iter, iters, epoch)
					if err := ctl.Drain(victim.name); err != nil {
						log.Fatal(err)
					}
				}
			}
			path := vfs.BatchPath(task.Tag, epoch, iter)
			got, err := readAll(router, path)
			if err != nil {
				log.Fatalf("distributed: epoch %d iter %d through fleet: %v", epoch, iter, err)
			}
			want, err := readAll(base.FS(), path)
			if err != nil {
				log.Fatal(err)
			}
			if sha256.Sum256(got) != sha256.Sum256(want) {
				log.Fatalf("distributed: batch %s differs from single-node baseline", path)
			}
			steps++
		}
		fmt.Printf("epoch %d: %d batches, all byte-identical to baseline\n", epoch, iters)
	}
	stats := router.Stats()
	fmt.Printf("\n%d steps through the fleet, %d failovers, opens by node: %v\n",
		steps, stats.Failovers-failovers, stats.OpensByNode)

	// The registry watched the failure happen: deadline sweeps walk the
	// victim announced -> healthy -> suspect -> dead (kill) or park it in
	// draining (drain).
	if failEpoch >= 0 {
		wantState := fleet.StateDraining
		if *failMode == "kill" {
			wantState = fleet.StateDead
		}
		if err := waitForState(ctl, victim.name, wantState, 5*time.Second); err != nil {
			log.Fatal(err)
		}
		st, _ := ctl.Nodes()
		for _, n := range st {
			if n.Info.Name != victim.name {
				continue
			}
			fmt.Printf("registry history for %s:\n", n.Info.Name)
			for _, tr := range n.History {
				fmt.Printf("  %s -> %s\n", tr.FromName, tr.ToName)
			}
		}
	}

	// One pane of glass: the merged exposition must carry every live
	// node's series under its own label (the killed node's exporter is
	// gone; the drained one keeps reporting).
	resp, err := http.Get("http://" + regAddr.String() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	text := string(body)
	for _, n := range nodes {
		if n.down {
			continue
		}
		label := fmt.Sprintf("node=%q", n.name)
		if !strings.Contains(text, label) {
			log.Fatalf("distributed: fleet /metrics is missing %s", label)
		}
		fmt.Printf("fleet /metrics carries %s series\n", label)
	}
	if !strings.Contains(text, fmt.Sprintf("node=%q", fleet.FleetLabel)) {
		log.Fatal("distributed: fleet /metrics is missing the merged _fleet series")
	}

	fmt.Println("\nmerged fleet histogram (viewserver request latency):")
	h := collector.MergedHistogram("viewserver.request_ns")
	s := h.Snapshot()
	fmt.Printf("  count=%d p50=%s p99=%s\n", s.Count,
		time.Duration(s.Quantile(0.50)), time.Duration(s.Quantile(0.99)))
	fmt.Println("\nOK: epoch completed byte-for-byte through the failure")
	_ = os.Stdout.Sync()
}

// readAll runs the open/read-all/close cycle on any mount.
func readAll(m vfs.Mount, path string) ([]byte, error) {
	fd, err := m.Open(path)
	if err != nil {
		return nil, err
	}
	defer m.Close(fd)
	return m.ReadAll(fd)
}

func waitForState(ctl *fleet.RegistryClient, name string, want fleet.NodeState, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		nodes, err := ctl.Nodes()
		if err == nil {
			for _, n := range nodes {
				if n.Info.Name == name && n.State == want {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("distributed: %s never reached %s", name, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
