// Distributed data-parallel training with remote storage (the Figure 14
// scenario) on the REAL engine: two nodes each run a full SAND service,
// fetch the encoded dataset once from a bandwidth-accounted remote store
// (the Filestore role), shard every epoch's iterations round-robin, and
// synchronize at a DDP barrier per global step.
package main

import (
	"fmt"
	"log"
	"os"

	"sand/internal/cluster"
	"sand/internal/config"
	"sand/internal/dataset"
	"sand/internal/metrics"
	"sand/internal/obs"
)

func main() {
	ds, err := dataset.Kinetics400.Miniature(8, 64, 64, 60, 33)
	if err != nil {
		log.Fatal(err)
	}
	store, err := cluster.NewRemoteStore(ds)
	if err != nil {
		log.Fatal(err)
	}
	task := &config.Task{
		Tag:         "ddp",
		Source:      config.SourceFile,
		DatasetPath: "/remote/kinetics-mini",
		Sampling:    config.Sampling{VideosPerBatch: 2, FramesPerVideo: 6, FrameStride: 2, SamplesPerVideo: 1},
		Stages: []config.Stage{{
			Name: "resize", Type: config.BranchSingle,
			Inputs: []string{"frame"}, Outputs: []string{"a0"},
			Ops: []config.OpSpec{{Op: "resize", Params: map[string]any{"shape": []any{48, 48}}}},
		}},
	}
	const epochs = 3
	c, err := cluster.New(store, cluster.Options{
		Nodes: 2, Task: task,
		ChunkEpochs: 3, TotalEpochs: epochs, Workers: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	setupTraffic := store.BytesServed()
	steps := 0
	if err := c.Run(epochs, func(r cluster.StepResult) { steps++ }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DDP run: %d nodes, %d epochs, %d node-steps, %d allreduce barriers\n",
		len(c.Nodes()), epochs, steps, c.Barriers())
	for _, n := range c.Nodes() {
		st := n.Service().Stats()
		fmt.Printf("  node %d: %d batches, %d clips, %d frames decoded, %d objects reused\n",
			n.ID, n.Batches(), n.Clips(), st.ObjectsDecoded, st.ObjectsReused)
	}
	// The headline of Figure 14: the remote store served the dataset
	// exactly once per node; every epoch after that fed from local cache.
	naive := setupTraffic * int64(epochs) // re-fetching every epoch
	fmt.Printf("\nremote traffic: %s total (fetch-once).\n", metrics.Bytes(float64(store.BytesServed())))
	fmt.Printf("an on-demand pipeline re-reading per epoch would move %s — SAND uses %s of it.\n",
		metrics.Bytes(float64(naive)), metrics.Pct(float64(store.BytesServed())/float64(naive)))
	// Node services report into the process-wide registry (histograms and
	// counters aggregate across nodes; snapshots show the last registrant).
	fmt.Println()
	if err := obs.Default().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
