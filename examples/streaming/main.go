// Streaming ingest (the "input_source: streaming" configuration, §5.1):
// a live source produces video segments while training runs; segments
// join the dataset at the next chunk boundary, growing each epoch — the
// online-learning scenario the paper motivates with live-video ingest.
package main

import (
	"fmt"
	"log"
	"os"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/metrics"
	"sand/internal/stream"
)

func main() {
	// Bootstrap corpus: 4 archived videos.
	ds, err := dataset.Generate("bootstrap", dataset.VideoSpec{
		W: 64, H: 64, C: 3, Frames: 45, FPS: 30, GOP: 15,
	}, 4, 11)
	if err != nil {
		log.Fatal(err)
	}
	task := &config.Task{
		Tag:         "online",
		Source:      config.SourceStreaming,
		DatasetPath: "/stream/live",
		Sampling:    config.Sampling{VideosPerBatch: 2, FramesPerVideo: 4, FrameStride: 2, SamplesPerVideo: 1},
		Stages: []config.Stage{{
			Name: "resize", Type: config.BranchSingle,
			Inputs: []string{"frame"}, Outputs: []string{"a"},
			Ops: []config.OpSpec{{Op: "resize", Params: map[string]any{"shape": []any{48, 48}}}},
		}},
	}
	if err := task.Validate(); err != nil {
		log.Fatal(err)
	}
	const epochs, chunk = 6, 2
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: chunk,
		TotalEpochs: epochs,
		Workers:     4,
		Coordinate:  true,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// The live feed: a camera delivering 45-frame segments.
	camera := &stream.LiveGenerator{
		Spec:   dataset.VideoSpec{W: 64, H: 64, C: 3, Frames: 45, FPS: 30, GOP: 15, Seed: 900},
		Prefix: "cam",
	}
	ingestor, err := stream.NewIngestor(camera, svc)
	if err != nil {
		log.Fatal(err)
	}
	loader, err := svc.NewLoader("online")
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 0; epoch < epochs; epoch++ {
		iters, _ := svc.ItersInEpoch("online", epoch)
		clips := 0
		for it := 0; it < iters; it++ {
			batch, _, err := loader.Next(epoch, it)
			if err != nil {
				log.Fatal(err)
			}
			clips += batch.Len()
		}
		fmt.Printf("epoch %d: %d iterations, %d clips (dataset grows at chunk boundaries)\n",
			epoch, iters, clips)
		// Two new segments arrive while the epoch trains.
		if epoch < epochs-1 {
			if _, err := ingestor.PullBatch(2); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := svc.Stats()
	fmt.Printf("\ningested %d segments (%s); engine decoded %d frames, reused %d objects\n",
		ingestor.Ingested(), metrics.Bytes(float64(ingestor.Bytes())), st.ObjectsDecoded, st.ObjectsReused)
	fmt.Println()
	if err := svc.Obs().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
