// Remote views: a trainer reading every batch of an epoch over the
// network dataplane. One process plans and serves a view tree
// (what cmd/sandserve does); a trainer mounts it through
// viewserver.Client — the same four POSIX calls as the local quickstart
// — and the example verifies each remote batch byte-for-byte against
// the in-process filesystem before printing the server's dataplane
// counters (the sequential read-ahead hit rate and the zero-copy hit /
// copy-fallback split). -store-shards and -mem-budget-mb shape the
// object store behind the engine, so a tight budget exercises the
// pinned serve path under live eviction.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/metrics"
	"sand/internal/vfs"
	"sand/internal/viewserver"
)

func main() {
	storeShards := flag.Int("store-shards", 0, "object-store shard count (0 = a power of two near GOMAXPROCS, 1 = unsharded)")
	memBudgetMB := flag.Int64("mem-budget-mb", 0, "in-memory object-tier budget in MiB (0 = engine default)")
	flag.Parse()

	// --- the serving side: an engine exporting its views over TCP ---
	ds, err := dataset.Kinetics400.Miniature(6, 64, 64, 60, 21)
	if err != nil {
		log.Fatal(err)
	}
	task := &config.Task{
		Tag:         "train",
		Source:      config.SourceFile,
		DatasetPath: "/dataset/remote",
		Sampling:    config.Sampling{VideosPerBatch: 2, FramesPerVideo: 6, FrameStride: 2, SamplesPerVideo: 1},
		Stages: []config.Stage{{
			Name: "resize", Type: config.BranchSingle,
			Inputs: []string{"frame"}, Outputs: []string{"a0"},
			Ops: []config.OpSpec{{Op: "resize", Params: map[string]any{"shape": []any{48, 48}}}},
		}},
	}
	if err := task.Validate(); err != nil {
		log.Fatal(err)
	}
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 2,
		TotalEpochs: 2,
		Workers:     2,
		Coordinate:  true,
		Seed:        7,
		MemBudget:   *memBudgetMB << 20,
		StoreShards: *storeShards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	srv := viewserver.New(svc.FS(), viewserver.Options{ReadAhead: viewserver.DefaultReadAhead, Obs: svc.Obs()})
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("view server on %s exporting task %q\n", addr, task.Tag)

	// --- the training side: a remote mount over loopback ---
	cli, err := viewserver.Dial("tcp", addr.String(), viewserver.ClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Shutdown()

	loader, err := core.NewRemoteLoader(cli, task.Tag)
	if err != nil {
		log.Fatal(err)
	}
	iters, err := svc.ItersPerEpoch(task.Tag)
	if err != nil {
		log.Fatal(err)
	}

	fs := svc.FS()
	clips, wire := 0, int64(0)
	for iter := 0; iter < iters; iter++ {
		// The Figure 6 sequence, but over a socket.
		batch, meta, err := loader.Next(0, iter)
		if err != nil {
			log.Fatal(err)
		}
		clips += batch.Len()

		// Verify: the remote mount and the in-process filesystem serve
		// byte-identical views.
		path := vfs.BatchPath(task.Tag, 0, iter)
		rfd, err := cli.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		remote, err := cli.ReadAll(rfd)
		if err != nil {
			log.Fatal(err)
		}
		cli.Close(rfd)
		lfd, err := fs.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		local, err := fs.ReadAll(lfd)
		if err != nil {
			log.Fatal(err)
		}
		fs.Close(lfd)
		if !bytes.Equal(remote, local) {
			log.Fatalf("iteration %d: remote view differs from local (%d vs %d bytes)",
				iter, len(remote), len(local))
		}
		wire += int64(len(remote))
		fmt.Printf("  iter %d: %d clips %s over the wire, geometry %s — byte-identical to local\n",
			iter, batch.Len(), metrics.Bytes(float64(len(remote))), meta.Geometry)
	}

	st := srv.Stats()
	fmt.Printf("\nepoch done: %d iterations, %d clips; %s of views verified, %s total served over TCP\n",
		iters, clips, metrics.Bytes(float64(wire)), metrics.Bytes(float64(st.BytesServed)))
	fmt.Printf("read-ahead: %d hits / %d misses (%s hit rate)\n",
		st.ReadaheadHits, st.ReadaheadMisses, metrics.Pct(st.ReadaheadHitRate()))
	fmt.Printf("dataplane: %d responses served by reference (zero-copy), %d copy fallbacks\n",
		st.ZeroCopyHits, st.CopyFallbacks)
	if st.ReadaheadHits == 0 {
		log.Fatal("expected the sequential epoch to produce read-ahead hits")
	}
	if st.ZeroCopyHits == 0 {
		log.Fatal("expected cached batches to be served by reference (zero zero-copy hits)")
	}
	if st.OpenFDs != 0 {
		log.Fatalf("leaked %d server fds", st.OpenFDs)
	}
	fmt.Println()
	srv.StatsTable().Render(os.Stdout)
	fmt.Println()
	if err := svc.Obs().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
