// Quickstart: the Figure 6 experience end to end.
//
// It generates a miniature synthetic video dataset, configures a SAND
// task from the paper's YAML format, and consumes training batches
// through the four POSIX calls of Table 2 (open/read/getxattr/close) —
// the entire preprocessing pipeline in a handful of lines.
package main

import (
	"fmt"
	"log"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/vfs"
)

const taskYAML = `
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 8
    frame_stride: 2
    samples_per_video: 1
  augmentation:
  - name: "augment_resize"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["augmented_frame_0"]
    config:
    - resize:
        shape: [64, 64]
        interpolation: ["bilinear"]
  - name: "augment_crop"
    branch_type: "single"
    inputs: ["augmented_frame_0"]
    outputs: ["augmented_frame_1"]
    config:
    - random_crop:
        shape: [56, 56]
  - name: "random_flip"
    branch_type: "random"
    inputs: ["augmented_frame_1"]
    outputs: ["augmented_frame_2"]
    branches:
    - prob: 0.5
      config:
      - flip:
          flip_prob: 1.0
    - prob: 0.5
      config: None
`

func main() {
	// A miniature Kinetics-like corpus: 8 synthetic videos.
	ds, err := dataset.Kinetics400.Miniature(8, 96, 96, 60, 7)
	if err != nil {
		log.Fatal(err)
	}
	task, err := config.LoadTask(taskYAML)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 2,
		TotalEpochs: 2,
		Workers:     4,
		Coordinate:  true,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// --- This is the whole preprocessing interface (Figure 6) ---
	fs := svc.FS()
	iters, _ := svc.ItersPerEpoch("train")
	for epoch := 0; epoch < 2; epoch++ {
		for it := 0; it < iters; it++ {
			fd, err := fs.Open(vfs.BatchPath("train", epoch, it)) // open()
			if err != nil {
				log.Fatal(err)
			}
			data, err := fs.ReadAll(fd) // read()
			if err != nil {
				log.Fatal(err)
			}
			ts, _ := fs.Getxattr(fd, "user.sand.timestamps") // getxattr()
			labels, _ := fs.Getxattr(fd, "user.sand.labels")
			fs.Close(fd) // close()

			batch, err := core.DecodeBatch(data)
			if err != nil {
				log.Fatal(err)
			}
			w, h, c := batch.Clips[0].Geometry()
			fmt.Printf("epoch %d iter %d: %d clips of %d frames @ %dx%dx%d  labels=[%s]  pts=[%s]\n",
				epoch, it, batch.Len(), batch.Clips[0].Len(), w, h, c, labels, ts)
		}
	}
	// ------------------------------------------------------------

	st := svc.Stats()
	store := svc.StoreStats()
	gop := svc.GOPStats()
	fmt.Printf("\nengine: %d batches served (%d pre-materialized), %d frames decoded, %d objects reused\n",
		st.BatchesServed, st.PrematHits, st.ObjectsDecoded, st.ObjectsReused)
	fmt.Printf("cache:  %d objects in memory (%d bytes), hit/miss = %d/%d\n",
		store.MemObjects, store.MemBytes, store.Hits, store.Misses)
	fmt.Printf("gop:    hit rate %.1f%% (%d hits / %d misses), %d frames decoded once, %d extends\n",
		100*gop.HitRate(), gop.Hits, gop.Misses, gop.FramesDecoded, gop.Extends)
}
