// Quickstart: the Figure 6 experience end to end.
//
// It generates a miniature synthetic video dataset, configures a SAND
// task from the paper's YAML format, and consumes training batches
// through the four POSIX calls of Table 2 (open/read/getxattr/close) —
// the entire preprocessing pipeline in a handful of lines.
//
// The engine runs against a deliberately tight memory budget so three
// demo epochs exercise the whole adaptive story — eviction watermarks,
// GOP-cache shrinking, the EDF->SJF scheduler switch — and with
// -trace-out FILE the run exports it all as a Chrome trace
// (chrome://tracing or ui.perfetto.dev); see OBSERVABILITY.md.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/obs"
	"sand/internal/vfs"
)

const taskYAML = `
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 8
    frame_stride: 2
    samples_per_video: 1
  augmentation:
  - name: "augment_resize"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["augmented_frame_0"]
    config:
    - resize:
        shape: [64, 64]
        interpolation: ["bilinear"]
  - name: "augment_crop"
    branch_type: "single"
    inputs: ["augmented_frame_0"]
    outputs: ["augmented_frame_1"]
    config:
    - random_crop:
        shape: [56, 56]
  - name: "random_flip"
    branch_type: "random"
    inputs: ["augmented_frame_1"]
    outputs: ["augmented_frame_2"]
    branches:
    - prob: 0.5
      config:
      - flip:
          flip_prob: 1.0
    - prob: 0.5
      config: None
`

// overlapYAML swaps the single-view tail for four crop views of one
// resized frame — the multi-view shape the overlap-aware superset reuse
// path (DESIGN.md §9) accelerates. The four 64x64 windows are distinct
// but overlap heavily, so every sample forms one reuse group whose
// bounding superset is computed once per source frame and sliced four
// ways. (Coordinated random crops would resolve to one shared window —
// identical chains the concrete-graph merge already unifies — so the
// demo uses fixed distinct windows to exercise the near-identical case.)
const overlapYAML = `
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 4
    frames_per_video: 8
    frame_stride: 2
    samples_per_video: 1
  augmentation:
  - name: "augment_resize"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["base"]
    config:
    - resize:
        shape: [80, 80]
        interpolation: ["bilinear"]
  - name: "views"
    branch_type: "multi"
    inputs: ["base"]
    outputs: ["v0", "v1", "v2", "v3"]
    branches:
    - prob: 1.0
      config:
      - crop:
          shape: [64, 64]
          x: 0
          y: 0
    - prob: 1.0
      config:
      - crop:
          shape: [64, 64]
          x: 16
          y: 16
    - prob: 1.0
      config:
      - crop:
          shape: [64, 64]
          x: 8
          y: 0
    - prob: 1.0
      config:
      - crop:
          shape: [64, 64]
          x: 0
          y: 12
  - name: "join"
    branch_type: "merge"
    inputs: ["v0", "v1", "v2", "v3"]
    outputs: ["merged"]
`

func main() {
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of the run to this file")
	storeShards := flag.Int("store-shards", 0, "object-store shard count (0 = a power of two near GOMAXPROCS, 1 = unsharded)")
	overlap := flag.Bool("overlap", false, "run the four-view overlapping-crop task instead of the single-view demo")
	reuse := flag.Bool("reuse", true, "enable superset-crop reuse for overlapping views (exact; off recomputes each view)")
	flag.Parse()

	reg := obs.New()
	if *traceOut != "" {
		reg.Trace().Enable()
	}

	// A miniature Kinetics-like corpus: 8 synthetic videos.
	ds, err := dataset.Kinetics400.Miniature(8, 96, 96, 60, 7)
	if err != nil {
		log.Fatal(err)
	}
	yaml := taskYAML
	// The four-view overlap batch is ~4x the single-view one
	// (4 x 64x64x3 views per frame), so it needs headroom the tight demo
	// budget doesn't have.
	memBudget := int64(1 << 20)
	if *overlap {
		yaml = overlapYAML
		memBudget = 8 << 20
	}
	task, err := config.LoadTask(yaml)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 2,
		TotalEpochs: 3,
		Workers:     4,
		Coordinate:  true,
		Seed:        1,
		// A deliberately tight budget: the demo's working set crosses
		// the 75% eviction watermark and the scheduler's 80% SJF switch,
		// so a trace of this run shows the engine's whole adaptive story.
		MemBudget:   memBudget,
		StoreShards: *storeShards,
		Reuse:       core.ReuseOptions{DisableSuperset: !*reuse},
		Obs:         reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// --- This is the whole preprocessing interface (Figure 6) ---
	fs := svc.FS()
	iters, _ := svc.ItersPerEpoch("train")
	digest := sha256.New()
	for epoch := 0; epoch < 3; epoch++ {
		for it := 0; it < iters; it++ {
			fd, err := fs.Open(vfs.BatchPath("train", epoch, it)) // open()
			if err != nil {
				log.Fatal(err)
			}
			data, err := fs.ReadAll(fd) // read()
			if err != nil {
				log.Fatal(err)
			}
			ts, _ := fs.Getxattr(fd, "user.sand.timestamps") // getxattr()
			labels, _ := fs.Getxattr(fd, "user.sand.labels")
			fs.Close(fd) // close()

			digest.Write(data)
			batch, err := core.DecodeBatch(data)
			if err != nil {
				log.Fatal(err)
			}
			w, h, c := batch.Clips[0].Geometry()
			fmt.Printf("epoch %d iter %d: %d clips of %d frames @ %dx%dx%d  labels=[%s]  pts=[%s]\n",
				epoch, it, batch.Len(), batch.Clips[0].Len(), w, h, c, labels, ts)
		}
	}
	// ------------------------------------------------------------

	// The digest covers every batch byte of the run; with a fixed seed it
	// is deterministic, so check.sh diffs it across -reuse=true/false to
	// prove the superset rewrite is exact.
	fmt.Printf("batch digest: %x\n", digest.Sum(nil))
	rs := svc.ReuseStats()
	fmt.Printf("reuse: superset_hits=%d superset_misses=%d residual_skipped=%d\n",
		rs.SupersetHits, rs.SupersetMisses, rs.ResidualSkipped)

	fmt.Println()
	if err := reg.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := reg.Trace().WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
			reg.Trace().Len(), *traceOut)
	}
}
