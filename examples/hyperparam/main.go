// Hyperparameter search (the Figure 12 scenario): an ASHA search over
// optimizer settings for all four paper workloads, priced under the three
// preprocessing pipelines on a simulated 4-GPU node. All trials share one
// dataset, which is exactly where SAND's cross-job reuse pays off.
package main

import (
	"fmt"
	"log"
	"os"

	"sand/internal/gpusim"
	"sand/internal/metrics"
	"sand/internal/trainsim"
)

func main() {
	asha := trainsim.ASHAParams{
		Trials: 16, GPUs: 4,
		MaxEpochs: 16, ReductionFactor: 2, GracePeriod: 2,
		Seed: 42,
	}
	table := metrics.NewTable(
		"ASHA hyperparameter search, 4xA100, shared dataset (cf. paper Figure 12)",
		"model", "cpu-baseline", "gpu-baseline", "sand", "speedup-vs-cpu", "speedup-vs-gpu", "sand-util")
	for _, w := range gpusim.Workloads {
		times := map[trainsim.Pipeline]*trainsim.SearchResult{}
		var best *trainsim.ASHAResult
		for _, p := range []trainsim.Pipeline{trainsim.OnDemandCPU, trainsim.OnDemandGPU, trainsim.SAND} {
			res, err := trainsim.RunSearch(trainsim.SearchScenario{
				Base: trainsim.Scenario{
					Workload: w, Pipeline: p,
					ItersPerEpoch: 25, ChunkEpochs: 5,
					Scheduling: true, Seed: 42,
				},
				ASHA: asha,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[p] = res
			best = res.ASHA
		}
		cpu := times[trainsim.OnDemandCPU].Timing
		gpu := times[trainsim.OnDemandGPU].Timing
		sand := times[trainsim.SAND].Timing
		table.AddRow(w.Name,
			metrics.Seconds(cpu.TotalSec), metrics.Seconds(gpu.TotalSec), metrics.Seconds(sand.TotalSec),
			metrics.Ratio(sand.Speedup(cpu)), metrics.Ratio(sand.Speedup(gpu)),
			metrics.Pct(sand.GPUTrainUtil))
		if w.Name == gpusim.Workloads[0].Name {
			fmt.Printf("search outcome (identical under every pipeline): best=%s lr=%.4f wd=%.6f loss=%.3f, %d trials stopped early, %d trial-epochs\n\n",
				best.BestTrial.Optimizer, best.BestTrial.LR, best.BestTrial.WeightDecay, best.BestLoss, best.Stopped, best.TrialEpochs)
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
