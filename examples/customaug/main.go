// Custom augmentation over RPC (§5.5 of the paper): a user-defined
// transform — here a sepia-toned "film look" an external library might
// provide — runs in a separate process boundary behind net/rpc, composed
// into a standard SAND augmentation pipeline alongside built-in ops.
//
// In production the server would be a separate binary with its own
// runtime and dependencies; this example hosts it in-process on a
// loopback socket, which exercises exactly the same wire path.
package main

import (
	"fmt"
	"log"
	"strconv"

	"sand/internal/augment"
	"sand/internal/codec"
	"sand/internal/dataset"
	"sand/internal/frame"
	"sand/internal/rpcaug"
)

// sepia is the "external library" transform: luma with warm channel gains.
func sepia(clip *frame.Clip, params map[string]string) (*frame.Clip, error) {
	strength := 1.0
	if s, ok := params["strength"]; ok {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("sepia: bad strength: %w", err)
		}
		strength = v
	}
	out := clip.Clone()
	for _, f := range out.Frames {
		if f.C != 3 {
			return nil, fmt.Errorf("sepia: need 3 channels, got %d", f.C)
		}
		r, g, b := f.Plane(0), f.Plane(1), f.Plane(2)
		for i := range r {
			luma := (int(r[i])*299 + int(g[i])*587 + int(b[i])*114) / 1000
			mix := func(orig byte, tint int) byte {
				v := float64(orig)*(1-strength) + float64(tint)*strength
				if v > 255 {
					v = 255
				}
				return byte(v)
			}
			r[i] = mix(r[i], min(255, luma*112/100+20))
			g[i] = mix(g[i], luma*89/100+10)
			b[i] = mix(b[i], luma*69/100)
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	// 1. Host the custom transform behind the RPC boundary.
	srv := rpcaug.NewServer()
	if err := srv.Register("sepia", sepia); err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Serve("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("augmentation service listening on %s\n", addr)

	client, err := rpcaug.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	names, _ := client.List()
	fmt.Printf("remote transforms: %v\n", names)

	// 2. Compose it with built-in ops in an ordinary pipeline.
	pipeline := augment.Pipeline{
		&augment.Resize{W: 64, H: 64},
		&rpcaug.RemoteOp{Client: client, Transform: "sepia", Params: map[string]string{"strength": "0.8"}},
		&augment.CenterCrop{W: 56, H: 56},
	}
	fmt.Printf("pipeline: %s\n", pipeline.Signature())

	// 3. Run it on real decoded video.
	v, err := dataset.GenerateVideo(dataset.VideoSpec{
		Name: "demo", W: 96, H: 96, C: 3, Frames: 24, FPS: 30, GOP: 8, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	dec := codec.NewDecoder(v, nil)
	frames, err := dec.Frames([]int{0, 8, 16})
	if err != nil {
		log.Fatal(err)
	}
	clip, err := frame.NewClip(frames)
	if err != nil {
		log.Fatal(err)
	}
	out, err := pipeline.Apply(clip, nil)
	if err != nil {
		log.Fatal(err)
	}
	w, h, c := out.Geometry()
	fmt.Printf("transformed %d frames to %dx%dx%d through the RPC stage (%d remote calls)\n",
		out.Len(), w, h, c, srv.Calls("sepia"))

	// Sepia pushes red above blue; confirm the transform really ran.
	f := out.Frames[0]
	var rSum, bSum int
	for i := 0; i < f.W*f.H; i++ {
		rSum += int(f.Plane(0)[i])
		bSum += int(f.Plane(2)[i])
	}
	fmt.Printf("mean red %.1f vs mean blue %.1f — warm tone applied\n",
		float64(rSum)/float64(f.W*f.H), float64(bSum)/float64(f.W*f.H))
}
