// Multi-task training (the Figure 13 scenario) on the REAL engine: two
// heterogeneous tasks — a SlowFast-style recognizer and an MAE-style
// self-supervised learner with different frame counts, strides and crop
// sizes — share one dataset under a single SAND service. The example
// reports the decode/object reuse the shared planner achieves.
package main

import (
	"fmt"
	"log"
	"os"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
)

func task(tag string, framesPerVideo, stride, samples, cropW, cropH int) *config.Task {
	return &config.Task{
		Tag:         tag,
		Source:      config.SourceFile,
		DatasetPath: "/dataset/shared",
		Sampling: config.Sampling{
			VideosPerBatch:  4,
			FramesPerVideo:  framesPerVideo,
			FrameStride:     stride,
			SamplesPerVideo: samples,
		},
		Stages: []config.Stage{
			{
				Name: "resize", Type: config.BranchSingle,
				Inputs: []string{"frame"}, Outputs: []string{"a0"},
				Ops: []config.OpSpec{{Op: "resize", Params: map[string]any{"shape": []any{72, 72}}}},
			},
			{
				Name: "crop", Type: config.BranchSingle,
				Inputs: []string{"a0"}, Outputs: []string{"a1"},
				Ops: []config.OpSpec{{Op: "random_crop", Params: map[string]any{"shape": []any{cropH, cropW}}}},
			},
		},
	}
}

func main() {
	ds, err := dataset.Kinetics400.Miniature(8, 96, 96, 80, 21)
	if err != nil {
		log.Fatal(err)
	}
	slowfast := task("slowfast", 8, 2, 1, 64, 64)
	mae := task("mae", 4, 4, 2, 48, 48)

	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{slowfast, mae},
		Dataset:     ds,
		ChunkEpochs: 2,
		TotalEpochs: 2,
		Workers:     4,
		Coordinate:  true,
		Seed:        9,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Drive both "GPUs" epoch by epoch, interleaved like two Ray actors.
	for _, tag := range []string{"slowfast", "mae"} {
		loader, err := svc.NewLoader(tag)
		if err != nil {
			log.Fatal(err)
		}
		iters, _ := svc.ItersPerEpoch(tag)
		clips := 0
		for epoch := 0; epoch < 2; epoch++ {
			for it := 0; it < iters; it++ {
				batch, _, err := loader.Next(epoch, it)
				if err != nil {
					log.Fatal(err)
				}
				clips += batch.Len()
			}
		}
		w := 64
		if tag == "mae" {
			w = 48
		}
		fmt.Printf("task %-8s consumed %3d clips at %dx%d over 2 epochs\n", tag, clips, w, w)
	}

	st := svc.Stats()
	fmt.Printf("\nshared engine: %d frames decoded once for both tasks, %d cached objects reused\n",
		st.ObjectsDecoded, st.ObjectsReused)
	fmt.Printf("pruning: %d collapses; batches pre-materialized before the GPUs asked: %d of %d\n",
		st.PruneCollapses, st.PrematHits, st.BatchesServed)
	fmt.Println()
	if err := svc.Obs().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
