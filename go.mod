module sand

go 1.22
