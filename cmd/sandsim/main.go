// Command sandsim runs declarative fault-injection scenarios against
// the SAND stack (see internal/scenario and SCENARIOS.md). A scenario
// file declares a fleet, an optional workload, timed fault events,
// seeded random chaos, and assertions; sandsim executes it — on a
// virtual clock (sim mode) or against real engines (cluster mode) —
// and writes a deterministic JSON report per scenario.
//
// Usage:
//
//	sandsim run scenarios/*.yaml              # run, print PASS/FAIL summary
//	sandsim run -report-dir out s.yaml        # also write JSON reports + traces
//	sandsim run -json s.yaml                  # print the full report to stdout
//	sandsim list scenarios                    # table: name, kind, description
//	sandsim validate scenarios/*.yaml         # parse + validate only (fast lint)
//
// Exit status: 0 when every scenario passes (or validates), 1 when any
// assertion fails or a file is invalid.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"

	"sand/internal/scenario"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sandsim <command> [args]

commands:
  run [-report-dir dir] [-json] <file>...   run scenarios, summarize pass/fail
  list <dir-or-file>...                     list scenarios (name, kind, description)
  validate <file>...                        parse and validate only
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sandsim: %v\n", err)
		os.Exit(1)
	}
}

// expand resolves arguments to scenario files: directories contribute
// their *.yaml entries, sorted for stable ordering.
func expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			out = append(out, a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "*.yaml"))
		if err != nil {
			return nil, err
		}
		sort.Strings(matches)
		out = append(out, matches...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenario files given")
	}
	return out, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	reportDir := fs.String("report-dir", "", "write <name>.report.json (and failure traces) here")
	asJSON := fs.Bool("json", false, "print each full report as JSON to stdout")
	_ = fs.Parse(args)
	files, err := expand(fs.Args())
	if err != nil {
		return err
	}
	failed := 0
	for _, f := range files {
		sc, err := scenario.Load(f)
		if err != nil {
			return err
		}
		rep, tracePath, err := scenario.Run(sc, scenario.RunOptions{ReportDir: *reportDir})
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		if !rep.Pass {
			failed++
		}
		fmt.Println(rep.Summary())
		for _, a := range rep.Assertions {
			mark := "ok  "
			if !a.OK {
				mark = "FAIL"
			}
			detail := fmt.Sprintf("observed %g", a.Observed)
			if a.Err != "" {
				detail = a.Err
			}
			fmt.Printf("  %s %-44s %s\n", mark, a.Expr, detail)
		}
		if *reportDir != "" {
			path, err := scenario.SaveReport(*reportDir, rep)
			if err != nil {
				return err
			}
			fmt.Printf("  report: %s\n", path)
			if tracePath != "" {
				fmt.Printf("  flight recorder: %s\n", tracePath)
			}
		}
		if *asJSON {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(files))
	}
	fmt.Printf("all %d scenarios passed\n", len(files))
	return nil
}

func cmdList(args []string) error {
	if len(args) == 0 {
		args = []string{"scenarios"}
	}
	files, err := expand(args)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "NAME\tKIND\tSEED\tFILE\tDESCRIPTION")
	for _, f := range files {
		sc, err := scenario.Load(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%s\n", sc.Name, sc.Kind(), sc.Seed, f, sc.Description)
	}
	return w.Flush()
}

func cmdValidate(args []string) error {
	files, err := expand(args)
	if err != nil {
		return err
	}
	bad := 0
	for _, f := range files {
		if _, err := scenario.Load(f); err != nil {
			fmt.Printf("INVALID %s: %v\n", f, err)
			bad++
			continue
		}
		fmt.Printf("ok      %s\n", f)
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d scenario files invalid", bad, len(files))
	}
	return nil
}
