// Command sandgen generates synthetic TVC video datasets on disk for use
// with the SAND engine, standing in for corpora like Kinetics-400 that
// cannot be redistributed.
//
// Usage:
//
//	sandgen -out /tmp/k400-mini -videos 32 -w 128 -h 96 -frames 120
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sand/internal/dataset"
	"sand/internal/metrics"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	videos := flag.Int("videos", 16, "number of videos")
	w := flag.Int("w", 96, "frame width")
	h := flag.Int("h", 96, "frame height")
	frames := flag.Int("frames", 90, "frames per video (varied ±25%)")
	fps := flag.Int("fps", 30, "frames per second")
	gop := flag.Int("gop", 30, "keyframe interval")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "sandgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	ds, err := dataset.Generate("sandgen", dataset.VideoSpec{
		W: *w, H: *h, C: 3, Frames: *frames, FPS: *fps, GOP: *gop,
	}, *videos, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.WriteDir(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d videos to %s\n", len(ds.Videos), *out)
	fmt.Printf("encoded: %s, decoded equivalent: %s (%.1fx compression)\n",
		metrics.Bytes(float64(ds.TotalEncodedBytes())),
		metrics.Bytes(float64(ds.TotalRawBytes())),
		float64(ds.TotalRawBytes())/float64(ds.TotalEncodedBytes()))
}
