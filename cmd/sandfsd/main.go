// Command sandfsd is an interactive shell over the SAND view filesystem:
// it starts an engine over a synthetic (or on-disk) dataset and lets you
// browse and read views with ls / cat / stat / xattr commands — the
// FUSE-mount experience of the paper, in-process.
//
// Usage:
//
//	sandfsd                     # synthetic 8-video dataset
//	sandfsd -data /tmp/mini     # dataset directory from sandgen
//	sandfsd -metrics :9090      # also serve /metrics and /debug/trace
//
// Commands:
//
//	ls [dir]        list views
//	stat PATH       show view size and metadata
//	cat PATH        decode and summarize a view's payload
//	read PATH N     hex-dump the first N bytes of a view
//	stats           observability dump (engine/cache/scheduler metrics)
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/frame"
	"sand/internal/metrics"
	"sand/internal/obs"
	"sand/internal/vfs"
)

const defaultTask = `
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 2
    frames_per_video: 8
    frame_stride: 2
    samples_per_video: 1
  augmentation:
  - name: "resize"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [64, 64]
  - name: "crop"
    branch_type: "single"
    inputs: ["a0"]
    outputs: ["a1"]
    config:
    - random_crop:
        shape: [56, 56]
`

func main() {
	dataDir := flag.String("data", "", "dataset directory (default: generate synthetic)")
	taskFile := flag.String("task", "", "task config YAML file (default: built-in)")
	epochs := flag.Int("epochs", 4, "total training epochs")
	metricsAddr := flag.String("metrics", "", "HTTP address for /metrics and /debug/trace ('' disables)")
	trace := flag.Bool("trace", false, "enable the event tracer at startup")
	flag.Parse()

	var ds *dataset.Dataset
	var err error
	if *dataDir != "" {
		ds, err = dataset.LoadDir(*dataDir)
	} else {
		ds, err = dataset.Kinetics400.Miniature(8, 96, 96, 60, 3)
	}
	if err != nil {
		log.Fatal(err)
	}
	var task *config.Task
	if *taskFile != "" {
		task, err = config.LoadTaskFile(*taskFile)
	} else {
		task, err = config.LoadTask(defaultTask)
	}
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.New()
	if *trace {
		reg.Trace().Enable()
	}
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 2,
		TotalEpochs: *epochs,
		Workers:     4,
		Coordinate:  true,
		Seed:        1,
		Obs:         reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fs := svc.FS()
	if *metricsAddr != "" {
		addr, stop, err := reg.StartServer(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		fmt.Printf("sandfsd: observability on http://%s/metrics (traces at /debug/trace)\n", addr)
	}

	fmt.Printf("sandfsd: %d videos, task %q, %d epochs. Views follow the Table 1 scheme:\n", len(ds.Videos), task.Tag, *epochs)
	fmt.Printf("  /%s/<video>.mp4   /%s/<video>/frame<i>   /%s/<video>/frame<i>/aug<d>   /%s/<epoch>/<iter>/view\n",
		task.Tag, task.Tag, task.Tag, task.Tag)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "ls":
			dir := "/"
			if len(fields) > 1 {
				dir = fields[1]
			}
			entries, err := fs.Readdir(dir)
			if err != nil {
				fmt.Println("ls:", err)
				break
			}
			for _, e := range entries {
				fmt.Println(" ", e)
			}
		case "stat", "xattr":
			if len(fields) < 2 {
				fmt.Println("usage: stat PATH")
				break
			}
			withFD(fs, fields[1], func(fd int) {
				size, _ := fs.Size(fd)
				fmt.Printf("  size: %s\n", metrics.Bytes(float64(size)))
				names, _ := fs.Listxattr(fd)
				for _, n := range names {
					v, _ := fs.Getxattr(fd, n)
					fmt.Printf("  %s = %s\n", n, v)
				}
			})
		case "cat":
			if len(fields) < 2 {
				fmt.Println("usage: cat PATH")
				break
			}
			withFD(fs, fields[1], func(fd int) {
				data, err := fs.ReadAll(fd)
				if err != nil {
					fmt.Println("cat:", err)
					return
				}
				describe(fields[1], data)
			})
		case "read":
			if len(fields) < 3 {
				fmt.Println("usage: read PATH N")
				break
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				fmt.Println("read: bad byte count")
				break
			}
			withFD(fs, fields[1], func(fd int) {
				buf := make([]byte, n)
				got, err := fs.Read(fd, buf)
				if err != nil && got == 0 {
					fmt.Println("read:", err)
					return
				}
				fmt.Printf("  % x\n", buf[:got])
			})
		case "stats":
			reg.WriteText(os.Stdout)
		default:
			fmt.Println("commands: ls [dir] | stat PATH | cat PATH | read PATH N | stats | quit")
		}
		fmt.Print("> ")
	}
}

func withFD(fs *vfs.FS, path string, fn func(fd int)) {
	fd, err := fs.Open(path)
	if err != nil {
		fmt.Println("open:", err)
		return
	}
	defer fs.Close(fd)
	fn(fd)
}

// describe decodes a view payload according to its path kind.
func describe(path string, data []byte) {
	p, err := vfs.ParsePath(path)
	if err != nil {
		fmt.Printf("  %d bytes\n", len(data))
		return
	}
	switch p.Kind {
	case vfs.KindBatchView:
		batch, err := core.DecodeBatch(data)
		if err != nil {
			fmt.Println("  not a batch:", err)
			return
		}
		w, h, c := batch.Clips[0].Geometry()
		fmt.Printf("  batch: %d clips x %d frames @ %dx%dx%d, labels=%v\n",
			batch.Len(), batch.Clips[0].Len(), w, h, c, batch.Labels)
	case vfs.KindFrame, vfs.KindAugFrame:
		f, err := frame.DecodeFrame(data)
		if err != nil {
			fmt.Println("  not a frame:", err)
			return
		}
		fmt.Printf("  frame %d: %dx%dx%d, pts=%dms\n", f.Index, f.W, f.H, f.C, f.PTS)
	case vfs.KindVideo:
		fmt.Printf("  encoded video container, %s\n", metrics.Bytes(float64(len(data))))
	}
}
