package main

import (
	"fmt"
	"os"

	"sand/internal/gpusim"
	"sand/internal/graph"
	"sand/internal/metrics"
	"sand/internal/trainsim"
)

// Design-choice ablations beyond the paper's figures: sweeps over the
// chunk length k, the shared-pool slack, the storage budget and the vCPU
// pool, quantifying the sensitivity of SAND's headline results to each
// knob. These back the design discussion in DESIGN.md.

func init() {
	register("ablation-k", "ablation: chunk length k (epochs cached per decode)", func() error {
		w := gpusim.MAE
		t := metrics.NewTable("Chunk-length ablation (MAE, single task): larger k amortizes decoding further",
			"k", "sand work / baseline work", "sand total", "speedup-vs-cpu", "frames>=4/10ep")
		cpu, err := trainsim.Run(trainsim.Scenario{
			Workload: w, Pipeline: trainsim.OnDemandCPU,
			Epochs: 20, ItersPerEpoch: simIters, ChunkEpochs: 5, Scheduling: true, Seed: simSeed,
		})
		if err != nil {
			return err
		}
		req := graph.SamplingReq{Task: "mae", FramesPerVideo: w.FramesPerClip, FrameStride: w.FrameStride}
		for _, k := range []int{1, 2, 5, 10, 20} {
			sand, err := trainsim.Run(trainsim.Scenario{
				Workload: w, Pipeline: trainsim.SAND,
				Epochs: 20, ItersPerEpoch: simIters, ChunkEpochs: k, Scheduling: true, Seed: simSeed,
			})
			if err != nil {
				return err
			}
			f := sand.PlanCosts.SandPerBatchWork(w) / w.CPUPrepWork()
			sel, err := trainsim.FrameSelectionExperiment(true, 10, 60, 300, k, req, simSeed)
			if err != nil {
				return err
			}
			t.AddRow(k, fmt.Sprintf("%.3f", f), metrics.Seconds(sand.TotalSec),
				metrics.Ratio(sand.Speedup(cpu)), metrics.Pct(sel.FracAtLeast(4)))
		}
		fmt.Println("trade-off: bigger k cuts preprocessing work but concentrates frame reuse (less temporal variety per chunk)")
		return t.Render(os.Stdout)
	})

	register("ablation-slack", "ablation: shared-pool slack (intra-chunk temporal variety)", func() error {
		req := graph.SamplingReq{Task: "t", FramesPerVideo: 16, FrameStride: 2}
		t := metrics.NewTable("Pool-slack ablation: wider pools trade reuse for per-epoch variety",
			"slack (clips)", "pool frames", "distinct frames drawn/10ep", "frames>=4/10ep")
		for _, slack := range []int{0, 1, 2, 4} {
			// Pool size for a 300-frame video.
			pc, err := trainsim.PoolStatsForAblation(req, 300, slack, 10, 5, simSeed)
			if err != nil {
				return err
			}
			t.AddRow(slack, pc.PoolFrames, pc.DistinctSelected, metrics.Pct(pc.FracAtLeast4))
		}
		fmt.Println("slack 0 = the paper's exact-max-span pool (maximal reuse); slack >0 generalizes it")
		return t.Render(os.Stdout)
	})

	register("ablation-budget", "ablation: storage budget sweep (Algorithm 1 pressure)", func() error {
		t := metrics.NewTable("Storage-budget ablation (SlowFast+MAE, k=5)",
			"budget (frac of all-leaves)", "cached bytes", "chunk recompute (Gunits)", "fits")
		for _, frac := range []float64{1.0, 0.75, 0.5, 0.25, 0.1, 0.01} {
			pc, err := trainsim.DerivePlanCosts([]gpusim.Workload{gpusim.SlowFast, gpusim.MAE},
				simIters*2, simChunk, frac, simSeed)
			if err != nil {
				return err
			}
			t.AddRow(fmt.Sprintf("%.2f", frac), metrics.Bytes(float64(pc.CachedBytes)),
				fmt.Sprintf("%.2f", pc.SandChunkRecompute/1e9), pc.PruneFits)
		}
		fmt.Println("recompute grows monotonically as the budget shrinks — the Figure 17 trade-off, swept")
		return t.Render(os.Stdout)
	})

	register("ablation-workers", "ablation: vCPU pool size (the paper's 12-vCPU constraint)", func() error {
		w := gpusim.BasicVSRpp
		t := metrics.NewTable("vCPU ablation (BasicVSR++): how many cores each pipeline needs to stop stalling",
			"vCPUs/GPU", "cpu-baseline util", "sand util")
		for _, cpus := range []int{6, 12, 24, 48, 60} {
			cpuRes, err := trainsim.RunWithVCPUs(trainsim.Scenario{
				Workload: w, Pipeline: trainsim.OnDemandCPU,
				Epochs: simEpochs, ItersPerEpoch: simIters, ChunkEpochs: simChunk,
				Scheduling: true, Seed: simSeed,
			}, cpus)
			if err != nil {
				return err
			}
			sandRes, err := trainsim.RunWithVCPUs(trainsim.Scenario{
				Workload: w, Pipeline: trainsim.SAND,
				Epochs: simEpochs, ItersPerEpoch: simIters, ChunkEpochs: simChunk,
				Scheduling: true, Seed: simSeed,
			}, cpus)
			if err != nil {
				return err
			}
			t.AddRow(cpus, metrics.Pct(cpuRes.GPUTrainUtil), metrics.Pct(sandRes.GPUTrainUtil))
		}
		fmt.Println("paper §3: the on-demand baseline needs 4-5x more vCPUs to stop stalling; SAND is fine at 12")
		return t.Render(os.Stdout)
	})
}
