package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"sand/internal/metrics"
	"sand/internal/storage"
	"sand/internal/vfs"
	"sand/internal/viewserver"
)

// dataplane measures the zero-copy serve path against the copying
// baseline over real loopback TCP: pinned 1 MiB batch preads at 1/4/16
// concurrent clients, reporting wire MB/s and the zero-copy hit count.
// It is the CLI companion to BenchmarkViewServerZeroCopy — same
// workload, table output instead of testing.B.

func init() {
	register("dataplane", "viewserver: zero-copy (pinned writev) vs copying serve path over loopback TCP", func() error {
		t := metrics.NewTable(
			"Dataplane: 1 MiB pinned preads over loopback TCP, zero-copy vs forced copy",
			"clients", "copy MB/s", "zero-copy MB/s", "speedup", "zc hits", "fallbacks")
		for _, clients := range []int{1, 4, 16} {
			copyMBs, _, _, err := dataplaneRun(clients, true)
			if err != nil {
				return err
			}
			zcMBs, hits, fallbacks, err := dataplaneRun(clients, false)
			if err != nil {
				return err
			}
			t.AddRow(clients, fmt.Sprintf("%.0f", copyMBs), fmt.Sprintf("%.0f", zcMBs),
				metrics.Ratio(zcMBs/copyMBs), hits, fallbacks)
		}
		fmt.Println("zero-copy frames pinned payloads by reference (pooled header + writev); the copying path assembles every response in a fresh buffer")
		return t.Render(os.Stdout)
	})
}

// dataplaneProvider serves one fixed payload as a pinned reference out
// of a real object store, the same shape the engine's batch views take.
type dataplaneProvider struct {
	payload []byte
	store   *storage.Store
}

func (p *dataplaneProvider) Materialize(vp vfs.Path) ([]byte, map[string]string, error) {
	return p.payload, map[string]string{"user.sand.geometry": "bench"}, nil
}

func (p *dataplaneProvider) List(dir string) ([]string, error) { return nil, nil }

func (p *dataplaneProvider) MaterializePinned(vp vfs.Path) (*vfs.View, error) {
	obj, pin, err := p.store.GetPinned("/dataplane/payload")
	if err != nil {
		return nil, err
	}
	xattrs := map[string]string{"user.sand.geometry": "bench"}
	if pin == nil {
		return vfs.NewView(obj.Data, xattrs), nil
	}
	return vfs.NewPinnedView(obj.Data, xattrs, pin.Release), nil
}

// dataplaneRun preads a 1 MiB pinned view from `clients` concurrent
// connections and returns aggregate wire MB/s plus the server's
// zero-copy hit / copy-fallback counts.
func dataplaneRun(clients int, forceCopy bool) (mbs float64, hits, fallbacks int64, err error) {
	const (
		size       = 1 << 20
		opsPerConn = 64
	)
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	st, err := storage.Open(storage.Options{MemBudget: 64 << 20})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := st.Put(&storage.Object{Key: "/dataplane/payload", Data: payload}); err != nil {
		return 0, 0, 0, err
	}
	srv := viewserver.New(vfs.New(&dataplaneProvider{payload: payload, store: st}),
		viewserver.Options{ForceCopy: forceCopy})
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	defer srv.Close()

	conns := make([]*viewserver.Client, clients)
	fds := make([]int, clients)
	for i := range conns {
		c, err := viewserver.Dial("tcp", addr.String(), viewserver.ClientOptions{})
		if err != nil {
			return 0, 0, 0, err
		}
		defer c.Shutdown()
		conns[i] = c
		if fds[i], err = c.Open(vfs.BatchPath("bench", 0, i)); err != nil {
			return 0, 0, 0, err
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for ci := range conns {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			buf := make([]byte, size)
			for i := 0; i < opsPerConn; i++ {
				n, err := conns[ci].ReadAt(fds[ci], buf, 0)
				if err == nil && n != size {
					err = fmt.Errorf("pread %d bytes, want %d", n, size)
				}
				if err != nil {
					errs[ci] = err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, 0, err
		}
	}
	stats := srv.Stats()
	totalBytes := float64(clients) * opsPerConn * size
	return totalBytes / (1 << 20) / elapsed.Seconds(), stats.ZeroCopyHits, stats.CopyFallbacks, nil
}
