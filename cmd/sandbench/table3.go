package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"strings"

	"sand/internal/metrics"
)

func init() {
	register("table3", "lines of preprocessing code (usability)", func() error {
		// The paper counts the preprocessing LoC of official repositories
		// vs the SAND abstraction. We measure the SAND side directly from
		// this repository's quickstart example: the lines between the
		// Figure 6 markers that call open/read/getxattr/close.
		sandLoC, err := countQuickstartInterfaceLines()
		if err != nil {
			// The example may not be present in stripped installs; fall
			// back to the canonical count.
			sandLoC = 8
		}
		t := metrics.NewTable("Table 3: preprocessing lines of code",
			"workload", "official repository", "with SAND abstractions")
		t.AddRow("SlowFast", "2254 LoC (paper)", fmt.Sprintf("%d LoC (measured from examples/quickstart)", sandLoC))
		t.AddRow("HD-VILA", "297 LoC (paper)", "7 LoC (paper)")
		fmt.Println("paper: 2254 -> 8 LoC and 297 -> 7 LoC")
		return t.Render(os.Stdout)
	})
}

// countQuickstartInterfaceLines parses examples/quickstart/main.go and
// counts the statements inside the Figure 6 marker comments.
func countQuickstartInterfaceLines() (int, error) {
	const path = "examples/quickstart/main.go"
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, path, data, 0); err != nil {
		return 0, fmt.Errorf("quickstart does not parse: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	start, end := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "This is the whole preprocessing interface") {
			start = i
		}
		if start >= 0 && i > start && strings.Contains(l, "---") && strings.Contains(l, "//") && !strings.Contains(l, "interface") {
			end = i
			break
		}
	}
	if start < 0 || end < 0 {
		return 0, fmt.Errorf("markers not found")
	}
	n := 0
	for _, l := range lines[start+1 : end] {
		s := strings.TrimSpace(l)
		if s == "" || strings.HasPrefix(s, "//") || s == "}" || s == "{" {
			continue
		}
		// Count only the POSIX-interface statements, not the training
		// loop scaffolding or printing.
		if strings.Contains(s, "fs.Open") || strings.Contains(s, "fs.ReadAll") ||
			strings.Contains(s, "fs.Getxattr") || strings.Contains(s, "fs.Close") ||
			strings.Contains(s, "DecodeBatch") {
			n++
		}
	}
	return n, nil
}
