// Command sandbench regenerates every table and figure of the SAND
// paper's evaluation (§7) from this reproduction's planner, engine and
// simulator. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured for all of them.
//
// Usage:
//
//	sandbench                 # run everything
//	sandbench -fig 12         # one figure (2,3,4,5,11..20)
//	sandbench -table 3        # Table 3 (lines of preprocessing code)
//	sandbench -list           # list experiments
//	sandbench -fig 12 -cpuprofile cpu.pprof -memprofile mem.pprof
//	sandbench -trace-out trace.json   # Chrome trace of any real-engine
//	                                  # work (the figure experiments run
//	                                  # on the simulator and emit none)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"sand/internal/obs"
)

// experiment is one reproducible figure/table.
type experiment struct {
	id    string
	title string
	run   func() error
}

var experiments []experiment

func register(id, title string, run func() error) {
	experiments = append(experiments, experiment{id: id, title: title, run: run})
}

// storeShards is the -store-shards knob, consumed by the storescale
// experiment (0 = the store's GOMAXPROCS-derived default).
var storeShards = flag.Int("store-shards", 0, "object-store shard count for storage experiments (0 = a power of two near GOMAXPROCS, 1 = unsharded)")

func main() {
	fig := flag.String("fig", "", "figure number to run (e.g. 12, 19); empty = all")
	table := flag.String("table", "", "table number to run (e.g. 3)")
	exp := flag.String("exp", "", "experiment id to run (e.g. ablation-k, fignaive)")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of the run to this file")
	flag.Parse()

	if *traceOut != "" {
		// Experiments build engines with Options.Obs unset, which falls
		// back to the process-wide registry — enabling its tracer here
		// captures their scheduler and materialization events.
		obs.Default().Trace().Enable()
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
				return
			}
			defer f.Close()
			if err := obs.Default().Trace().WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	sort.Slice(experiments, func(i, j int) bool { return experiments[i].id < experiments[j].id })
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.id, e.title)
		}
		return
	}
	want := ""
	switch {
	case *fig != "":
		want = "fig" + *fig
	case *table != "":
		want = "table" + *table
	case *exp != "":
		want = *exp
	}
	ran := 0
	for _, e := range experiments {
		if want != "" && e.id != want {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; use -list\n", want)
		os.Exit(2)
	}
}
