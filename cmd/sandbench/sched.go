package main

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/metrics"
	"sand/internal/sched"
	"sand/internal/vfs"
	"sand/internal/viewserver"
)

// sched benchmarks the closed-loop scheduling additions (DESIGN.md §11)
// in three parts:
//
//   - overload: a premat flood against a small pool, demand-path
//     queue-wait p99 with admission control closed-loop vs static
//     (admission disabled). Steady-state p99 (after the controller's
//     warm-up) is the gated number.
//   - uncontended: a real-engine epoch with a generous DemandSLO vs
//     none — the admission bookkeeping must be free when the SLO is
//     never threatened.
//   - readahead: a sequential remote reader against a slow mount with
//     the fixed DefaultReadAhead depth vs the adaptive controller, plus
//     a stalled client that must stay inside the prefetch byte budget.
//
// Every gated number is also printed as a "METRIC name value" line for
// scripts/bench_sched.sh, which writes BENCH_sched.json and enforces
// the floors.

func init() {
	register("sched", "sched: closed-loop admission + adaptive read-ahead vs static baselines", runSchedBench)
}

func metric(name string, value float64) {
	fmt.Printf("METRIC %s %g\n", name, value)
}

func runSchedBench() error {
	// Part A: premat overload.
	staticP99, staticStats, err := schedOverloadRun(0)
	if err != nil {
		return err
	}
	closedP99, closedStats, err := schedOverloadRun(300 * time.Microsecond)
	if err != nil {
		return err
	}
	if closedStats.AdmissionEngages == 0 {
		return fmt.Errorf("sched bench: admission control never engaged under overload")
	}
	improvement := float64(staticP99) / float64(closedP99)
	t := metrics.NewTable(
		"Premat overload: demand queue-wait p99, steady state",
		"arm", "p99 µs", "admission engages", "premat shed", "premat rejected")
	t.AddRow("static", staticP99/1e3, staticStats.AdmissionEngages, staticStats.AdmissionShed, staticStats.AdmissionRejected)
	t.AddRow("closed-loop", closedP99/1e3, closedStats.AdmissionEngages, closedStats.AdmissionShed, closedStats.AdmissionRejected)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("demand p99 %s lower with admission control\n", metrics.Ratio(improvement))
	metric("sched.overload.static_p99_ns", float64(staticP99))
	metric("sched.overload.closed_p99_ns", float64(closedP99))
	metric("sched.overload.improvement", improvement)

	// Part B: uncontended epoch time with and without an SLO armed.
	offNS, err := schedEpochRun(0)
	if err != nil {
		return err
	}
	onNS, err := schedEpochRun(50 * time.Millisecond)
	if err != nil {
		return err
	}
	overhead := float64(onNS) / float64(offNS)
	t = metrics.NewTable(
		"Uncontended epoch: admission bookkeeping overhead",
		"arm", "ns/epoch")
	t.AddRow("slo-off", offNS)
	t.AddRow("slo-on", onNS)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("slo-on/slo-off epoch-time ratio %.3f\n", overhead)
	metric("sched.uncontended.off_ns", float64(offNS))
	metric("sched.uncontended.on_ns", float64(onNS))
	metric("sched.uncontended.overhead", overhead)

	// Part C: adaptive read-ahead vs the fixed default depth.
	fixedRate, _, err := schedReadaheadRun(false)
	if err != nil {
		return err
	}
	adaptiveRate, adaptiveDepth, err := schedReadaheadRun(true)
	if err != nil {
		return err
	}
	maxPinned, bounded, err := schedStalledRun()
	if err != nil {
		return err
	}
	t = metrics.NewTable(
		"Sequential remote reads: fixed vs adaptive read-ahead",
		"arm", "hit rate", "final depth")
	t.AddRow("fixed-2", metrics.Pct(fixedRate), viewserver.DefaultReadAhead)
	t.AddRow("adaptive", metrics.Pct(adaptiveRate), adaptiveDepth)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("stalled client: max unclaimed prefetch bytes %d (bounded=%v)\n", maxPinned, bounded)
	metric("sched.readahead.fixed_hitrate", fixedRate)
	metric("sched.readahead.adaptive_hitrate", adaptiveRate)
	metric("sched.readahead.stalled_max_pinned", float64(maxPinned))
	if bounded {
		metric("sched.readahead.stalled_bounded", 1)
	} else {
		metric("sched.readahead.stalled_bounded", 0)
	}
	return nil
}

// schedOverloadRun floods a two-worker pool with long premat tasks while
// a paced demand stream measures its queue waits. It returns the
// steady-state demand wait p99 (warm-up samples excluded from both arms
// alike) and the pool's final stats. slo==0 disables admission control:
// the static baseline.
func schedOverloadRun(slo time.Duration) (int64, sched.Stats, error) {
	const (
		prematRun    = 2 * time.Millisecond
		prematBurst  = 600
		demandEvery  = time.Millisecond
		demandTotal  = 400
		demandWarmup = 100
	)
	pool, err := sched.NewPool(sched.Options{Workers: 2, AdmissionSLO: slo})
	if err != nil {
		return 0, sched.Stats{}, err
	}
	defer pool.Close()

	prematTask := func(i int64) *sched.Task {
		return &sched.Task{
			Kind:      sched.Premat,
			Deadline:  i,
			Remaining: 4,
			Sig:       "bench.premat",
			Run: func() error {
				time.Sleep(prematRun)
				return nil
			},
		}
	}
	// Premat flood: a burst deep enough to outlast the measurement
	// window, then a top-up stream at the workers' consumption rate,
	// retrying politely when admission is closed.
	for i := int64(0); i < prematBurst; i++ {
		if err := pool.Submit(prematTask(i)); err != nil && !errors.Is(err, sched.ErrAdmission) {
			return 0, sched.Stats{}, err
		}
	}
	var stop atomic.Bool
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		for i := int64(prematBurst); !stop.Load(); i++ {
			err := pool.Submit(prematTask(i))
			if err != nil && !errors.Is(err, sched.ErrAdmission) {
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	waits := make([]int64, 0, demandTotal)
	var mu sync.Mutex
	var demand sync.WaitGroup
	for i := 0; i < demandTotal; i++ {
		demand.Add(1)
		enq := time.Now()
		err := pool.Submit(&sched.Task{
			Kind:      sched.Demand,
			Remaining: 1,
			Sig:       "bench.demand",
			Run: func() error {
				wait := time.Since(enq).Nanoseconds()
				mu.Lock()
				waits = append(waits, wait)
				mu.Unlock()
				demand.Done()
				return nil
			},
		})
		if err != nil {
			demand.Done()
			stop.Store(true)
			feeder.Wait()
			return 0, sched.Stats{}, err
		}
		time.Sleep(demandEvery)
	}
	demand.Wait()
	stop.Store(true)
	feeder.Wait()

	steady := waits[demandWarmup:]
	sort.Slice(steady, func(a, b int) bool { return steady[a] < steady[b] })
	p99 := steady[(99*len(steady)-1)/100]
	return p99, pool.Stats(), nil
}

// schedEpochRun measures wall time for a small real-engine run with the
// given DemandSLO (0 = admission bookkeeping off).
func schedEpochRun(slo time.Duration) (int64, error) {
	ds, err := dataset.Generate("schedbench", dataset.VideoSpec{
		W: 64, H: 64, C: 3, Frames: 24, FPS: 30, GOP: 8,
	}, 8, 13)
	if err != nil {
		return 0, err
	}
	task := &config.Task{
		Tag:         "sched",
		Source:      config.SourceFile,
		DatasetPath: "/data/schedbench",
		Sampling:    config.Sampling{VideosPerBatch: 4, FramesPerVideo: 4, FrameStride: 2, SamplesPerVideo: 1},
		Stages: []config.Stage{{
			Name: "resize", Type: config.BranchSingle,
			Inputs: []string{"frame"}, Outputs: []string{"out"},
			Ops: []config.OpSpec{{Op: "resize", Params: map[string]any{"shape": []any{48, 48}}}},
		}},
	}
	if err := task.Validate(); err != nil {
		return 0, err
	}
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 2,
		TotalEpochs: 2,
		MemBudget:   32 << 20,
		Workers:     4,
		Coordinate:  true,
		Seed:        17,
		DemandSLO:   slo,
	})
	if err != nil {
		return 0, err
	}
	defer svc.Close()
	loader, err := svc.NewLoader("sched")
	if err != nil {
		return 0, err
	}
	iters, err := svc.ItersPerEpoch("sched")
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for epoch := 0; epoch < 2; epoch++ {
		for it := 0; it < iters; it++ {
			if _, _, err := loader.Next(epoch, it); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start).Nanoseconds(), nil
}

// benchSlowViews is a synthetic view source whose batch views take a
// fixed wall time to materialize, so prefetch depth is what decides the
// hit rate.
type benchSlowViews struct {
	size  int
	delay time.Duration
}

func (p benchSlowViews) Materialize(vp vfs.Path) ([]byte, map[string]string, error) {
	if vp.Kind == vfs.KindBatchView {
		if vp.Epoch >= 4 || vp.Iteration >= 48 {
			return nil, nil, fmt.Errorf("%w: %s", vfs.ErrNotExist, vp.Raw)
		}
		time.Sleep(p.delay)
	}
	out := make([]byte, p.size)
	for i := range out {
		out[i] = byte(i + vp.Iteration)
	}
	return out, map[string]string{"user.sand.kind": vp.Kind.String()}, nil
}

func (p benchSlowViews) List(dir string) ([]string, error) { return nil, vfs.ErrNotExist }

// schedReadaheadRun reads two epochs sequentially through a viewserver
// and returns the prefetch hit rate (and, for the adaptive arm, the
// final session depth).
func schedReadaheadRun(adaptive bool) (float64, int, error) {
	opts := viewserver.Options{ReadAhead: viewserver.DefaultReadAhead}
	if adaptive {
		opts = viewserver.Options{AdaptiveReadAhead: true}
	}
	srv := viewserver.New(vfs.New(benchSlowViews{size: 64 << 10, delay: time.Millisecond}), opts)
	defer srv.Close()
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	cli, err := viewserver.Dial("tcp", addr.String(), viewserver.ClientOptions{})
	if err != nil {
		return 0, 0, err
	}
	defer cli.Shutdown()
	for epoch := 0; epoch < 2; epoch++ {
		for it := 0; it < 48; it++ {
			fd, err := cli.Open(fmt.Sprintf("/bench/%d/%d/view", epoch, it))
			if err != nil {
				return 0, 0, err
			}
			cli.Close(fd)
		}
	}
	depth := 0
	if d := srv.ReadaheadDepths(); len(d) > 0 {
		depth = d[len(d)-1]
	}
	return srv.Stats().ReadaheadHitRate(), depth, nil
}

// schedStalledRun opens a handful of views with long pauses against an
// adaptive server with a small prefetch byte budget and reports the
// maximum unclaimed prefetch bytes seen and whether they stayed inside
// budget + one round of in-flight prefetches.
func schedStalledRun() (int64, bool, error) {
	const (
		viewSize = 64 << 10
		budget   = 2 * viewSize
		maxDepth = 8
	)
	srv := viewserver.New(vfs.New(benchSlowViews{size: viewSize, delay: time.Millisecond}), viewserver.Options{
		AdaptiveReadAhead: true,
		ReadAhead:         2,
		ReadAheadMax:      maxDepth,
		ReadAheadBudget:   budget,
	})
	defer srv.Close()
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, false, err
	}
	cli, err := viewserver.Dial("tcp", addr.String(), viewserver.ClientOptions{})
	if err != nil {
		return 0, false, err
	}
	defer cli.Shutdown()
	var maxPinned int64
	for it := 0; it < 8; it++ {
		fd, err := cli.Open(fmt.Sprintf("/bench/0/%d/view", it))
		if err != nil {
			return 0, false, err
		}
		cli.Close(fd)
		time.Sleep(20 * time.Millisecond) // the stall: prefetches land, nothing drains them
		if b := srv.Stats().ReadaheadBytes; b > maxPinned {
			maxPinned = b
		}
	}
	bound := int64(budget + maxDepth*viewSize)
	return maxPinned, maxPinned <= bound, nil
}
