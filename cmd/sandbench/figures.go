package main

import (
	"fmt"
	"os"

	"sand/internal/gpusim"
	"sand/internal/graph"
	"sand/internal/metrics"
	"sand/internal/trainsim"
)

// Shared scenario scale for the end-to-end simulator experiments.
const (
	simEpochs = 10
	simIters  = 30
	simChunk  = 5
	simSeed   = 42
)

func runPipeline(w gpusim.Workload, p trainsim.Pipeline, jobs int, shared bool) (*trainsim.Result, error) {
	return trainsim.Run(trainsim.Scenario{
		Workload: w, Pipeline: p,
		Jobs: jobs, SharedDataset: shared,
		Epochs: simEpochs, ItersPerEpoch: simIters, ChunkEpochs: simChunk,
		Scheduling: true, Seed: simSeed,
	})
}

func init() {
	register("fig2", "preprocessing overhead and GPU utilization of VDL baselines", func() error {
		t := metrics.NewTable("Figure 2(a,b): baseline preprocessing vs training time, and utilization",
			"model", "cpu-prep/train", "gpu-prep/train", "cpu-total/ideal", "gpu-total/ideal", "cpu-util", "gpu-util")
		for _, w := range gpusim.Workloads {
			cpu, err := runPipeline(w, trainsim.OnDemandCPU, 1, false)
			if err != nil {
				return err
			}
			gpu, err := runPipeline(w, trainsim.OnDemandGPU, 1, false)
			if err != nil {
				return err
			}
			ideal, err := runPipeline(w, trainsim.Ideal, 1, false)
			if err != nil {
				return err
			}
			t.AddRow(w.Name,
				metrics.Ratio(w.CPUPrepRatio), metrics.Ratio(w.GPUPrepRatio),
				metrics.Ratio(cpu.TotalSec/ideal.TotalSec), metrics.Ratio(gpu.TotalSec/ideal.TotalSec),
				metrics.Pct(cpu.GPUTrainUtil), metrics.Pct(gpu.GPUTrainUtil))
		}
		fmt.Println("paper: CPU prep 2.2-6.5x training; GPU prep 1.3-2.7x; utilization reduced 65-88%")
		return t.Render(os.Stdout)
	})

	register("fig3", "repeated decoding across epochs (decode amplification)", func() error {
		// Plan one video's chunk with and without coordination and count
		// decoded frames per epoch.
		w := gpusim.SlowFast
		t := metrics.NewTable("Figure 3: frames decoded per epoch for one 300-frame video (SlowFast sampling)",
			"epochs", "on-demand decodes", "sand decodes", "reduction")
		for _, epochs := range []int{1, 3, 5, 10} {
			pcU, err := trainsim.DerivePlanCosts([]gpusim.Workload{w}, 4, epochs, 1, 3)
			if err != nil {
				return err
			}
			_ = pcU
			coord, err := countDecodes(w, epochs, true)
			if err != nil {
				return err
			}
			uncoord, err := countDecodes(w, epochs, false)
			if err != nil {
				return err
			}
			t.AddRow(epochs, uncoord, coord, metrics.Pct(1-float64(coord)/float64(uncoord)))
		}
		fmt.Println("paper: every epoch re-decodes its clips and discards them; SAND decodes a pool once per k epochs")
		return t.Render(os.Stdout)
	})

	register("fig4", "GPU-decode memory pressure: batch size and throughput", func() error {
		t := metrics.NewTable("Figure 4: batch size with CPU vs GPU decoding, and the throughput cost",
			"model", "batch (cpu decode)", "batch (gpu decode)", "throughput loss")
		for _, w := range gpusim.Workloads {
			t.AddRow(w.Name, w.BatchClips, w.GPUDecodeBatchClips, metrics.Pct(w.GPUDecodeThroughputPenalty()))
		}
		fmt.Println("paper: 1080p batches shrink 24 -> 16, a 9.1% throughput loss (BasicVSR++ row)")
		return t.Render(os.Stdout)
	})

	register("fig5", "component-wise energy of CPU-path training", func() error {
		w := gpusim.SlowFast
		r, err := runPipeline(w, trainsim.OnDemandCPU, 1, false)
		if err != nil {
			return err
		}
		e := r.Energy
		t := metrics.NewTable("Figure 5: energy breakdown, on-demand CPU pipeline (SlowFast)",
			"component", "energy (J)", "share")
		total := e.Total()
		t.AddRow("cpu busy", int(e.CPUBusyJ), metrics.Pct(e.CPUBusyJ/total))
		t.AddRow("cpu idle", int(e.CPUIdleJ), metrics.Pct(e.CPUIdleJ/total))
		t.AddRow("gpu train", int(e.GPUTrainJ), metrics.Pct(e.GPUTrainJ/total))
		t.AddRow("gpu stalled", int(e.GPUIdleJ), metrics.Pct(e.GPUIdleJ/total))
		t.AddRow("total cpu share", "", metrics.Pct(e.CPUShare()))
		fmt.Printf("paper: CPU accounts for 41.6%% of energy; GPU decode costs 2.6x CPU decode (our mean: %.1fx)\n",
			meanDecodeRatio())
		return t.Render(os.Stdout)
	})

	register("fig11", "single-task training time and GPU utilization", func() error {
		t := metrics.NewTable("Figure 11: single task, 1xA100 + 12 vCPUs (time normalized to on-demand GPU)",
			"model", "cpu/gpu-time", "sand/gpu-time", "sand-vs-cpu", "sand-vs-gpu", "util-cpu", "util-gpu", "util-sand")
		for _, w := range gpusim.Workloads {
			cpu, err := runPipeline(w, trainsim.OnDemandCPU, 1, false)
			if err != nil {
				return err
			}
			gpu, err := runPipeline(w, trainsim.OnDemandGPU, 1, false)
			if err != nil {
				return err
			}
			sand, err := runPipeline(w, trainsim.SAND, 1, false)
			if err != nil {
				return err
			}
			t.AddRow(w.Name,
				fmt.Sprintf("%.2f", cpu.TotalSec/gpu.TotalSec),
				fmt.Sprintf("%.2f", sand.TotalSec/gpu.TotalSec),
				metrics.Ratio(sand.Speedup(cpu)), metrics.Ratio(sand.Speedup(gpu)),
				metrics.Pct(cpu.GPUTrainUtil), metrics.Pct(gpu.GPUTrainUtil), metrics.Pct(sand.GPUTrainUtil))
		}
		fmt.Println("paper: SAND 2.4-5.6x faster than CPU, 1.4-1.7x than GPU; util gains 2.5-5.7x / 1.4-1.7x")
		return t.Render(os.Stdout)
	})

	register("fignaive", "naive full-frame caching baseline (§7.2)", func() error {
		w := gpusim.SlowFast
		cpu, err := runPipeline(w, trainsim.OnDemandCPU, 1, false)
		if err != nil {
			return err
		}
		naive, err := runPipeline(w, trainsim.NaiveCache, 1, false)
		if err != nil {
			return err
		}
		sand, err := runPipeline(w, trainsim.SAND, 1, false)
		if err != nil {
			return err
		}
		t := metrics.NewTable("Naive caching: 3 TB of decoded frames vs SAND (SlowFast / Kinetics-400)",
			"pipeline", "total", "speedup vs on-demand", "cached fraction of dataset")
		t.AddRow("on-demand cpu", metrics.Seconds(cpu.TotalSec), "1.0x", "-")
		t.AddRow("naive cache", metrics.Seconds(naive.TotalSec), metrics.Ratio(naive.Speedup(cpu)), metrics.Pct(w.NaiveCacheHitRate()))
		t.AddRow("sand", metrics.Seconds(sand.TotalSec), metrics.Ratio(sand.Speedup(cpu)), "-")
		fmt.Println("paper: naive caching yields only 2.7% speedup; <4% of decoded frames fit")
		return t.Render(os.Stdout)
	})

	register("fig12", "hyperparameter search with ASHA on 4 GPUs", func() error {
		t := metrics.NewTable("Figure 12: hyperparameter search, shared dataset, 4xA100",
			"model", "sand-vs-cpu", "sand-vs-gpu", "gap-from-ideal", "utilgain-cpu", "utilgain-gpu")
		for _, w := range gpusim.Workloads {
			cpu, err := runPipeline(w, trainsim.OnDemandCPU, 4, true)
			if err != nil {
				return err
			}
			gpu, err := runPipeline(w, trainsim.OnDemandGPU, 4, true)
			if err != nil {
				return err
			}
			sand, err := runPipeline(w, trainsim.SAND, 4, true)
			if err != nil {
				return err
			}
			ideal, err := runPipeline(w, trainsim.Ideal, 4, true)
			if err != nil {
				return err
			}
			t.AddRow(w.Name,
				metrics.Ratio(sand.Speedup(cpu)), metrics.Ratio(sand.Speedup(gpu)),
				metrics.Pct((sand.TotalSec-ideal.TotalSec)/ideal.TotalSec),
				metrics.Ratio(sand.GPUTrainUtil/cpu.GPUTrainUtil),
				metrics.Ratio(sand.GPUTrainUtil/gpu.GPUTrainUtil))
		}
		fmt.Println("paper: 2.9-10.2x vs CPU, 1.4-2.8x vs GPU, 5-14% from ideal; util 3.1-12.3x / 1.8-2.9x")
		return t.Render(os.Stdout)
	})

	register("fig13", "multiple heterogeneous tasks (SlowFast + MAE)", func() error {
		// Two tasks sharing one dataset on 2 GPUs, planned together by
		// the real planner.
		pc, err := trainsim.DerivePlanCosts([]gpusim.Workload{gpusim.SlowFast, gpusim.MAE}, simIters*4, simChunk, 1, simSeed)
		if err != nil {
			return err
		}
		t := metrics.NewTable("Figure 13: multi-task training, 2xA100, shared dataset",
			"model", "sand-vs-cpu", "utilgain-cpu", "utilgain-gpu")
		for _, w := range []gpusim.Workload{gpusim.SlowFast, gpusim.MAE} {
			sc := trainsim.Scenario{
				Workload: w, Pipeline: trainsim.SAND, Jobs: 2, SharedDataset: true,
				Epochs: simEpochs, ItersPerEpoch: simIters, ChunkEpochs: simChunk,
				Scheduling: true, Seed: simSeed, PlanCosts: pc,
			}
			sand, err := trainsim.Run(sc)
			if err != nil {
				return err
			}
			cpu, err := runPipeline(w, trainsim.OnDemandCPU, 2, true)
			if err != nil {
				return err
			}
			gpu, err := runPipeline(w, trainsim.OnDemandGPU, 2, true)
			if err != nil {
				return err
			}
			t.AddRow(w.Name, metrics.Ratio(sand.Speedup(cpu)),
				metrics.Ratio(sand.GPUTrainUtil/cpu.GPUTrainUtil),
				metrics.Ratio(sand.GPUTrainUtil/gpu.GPUTrainUtil))
		}
		fmt.Println("paper: 5.3x / 6.2x faster vs CPU; util 5.4x / 8.3x (CPU), 1.7x / 2.5x (GPU)")
		return t.Render(os.Stdout)
	})

	register("fig14", "distributed training with remote storage", func() error {
		w := gpusim.SlowFast
		mk := func(p trainsim.Pipeline) (*trainsim.Result, error) {
			return trainsim.Run(trainsim.Scenario{
				Workload: w, Pipeline: p, Jobs: 2,
				Epochs: 30, ItersPerEpoch: simIters, ChunkEpochs: simChunk,
				Scheduling: true, RemoteStorage: true, Seed: simSeed,
			})
		}
		cpu, err := mk(trainsim.OnDemandCPU)
		if err != nil {
			return err
		}
		sand, err := mk(trainsim.SAND)
		if err != nil {
			return err
		}
		t := metrics.NewTable("Figure 14: 2 nodes, dataset on Filestore over a WAN (SlowFast, 30 epochs)",
			"pipeline", "total", "gpu-util", "wan-bytes")
		t.AddRow("on-demand cpu", metrics.Seconds(cpu.TotalSec), metrics.Pct(cpu.GPUTrainUtil), metrics.Bytes(cpu.WANBytes))
		t.AddRow("sand", metrics.Seconds(sand.TotalSec), metrics.Pct(sand.GPUTrainUtil), metrics.Bytes(sand.WANBytes))
		fmt.Printf("speedup %.1fx, traffic %.1f%% of baseline (paper: 5.2x, ~3%%)\n",
			sand.Speedup(cpu), 100*sand.WANBytes/cpu.WANBytes)
		return t.Render(os.Stdout)
	})

	register("fig15", "power consumption of hyperparameter search", func() error {
		t := metrics.NewTable("Figure 15: total energy, one search epoch scale, 4 GPUs shared dataset",
			"model", "cpu-baseline (kJ)", "gpu-baseline (kJ)", "sand (kJ)", "saving-vs-cpu", "saving-vs-gpu")
		for _, w := range gpusim.Workloads {
			cpu, err := runPipeline(w, trainsim.OnDemandCPU, 4, true)
			if err != nil {
				return err
			}
			gpu, err := runPipeline(w, trainsim.OnDemandGPU, 4, true)
			if err != nil {
				return err
			}
			sand, err := runPipeline(w, trainsim.SAND, 4, true)
			if err != nil {
				return err
			}
			t.AddRow(w.Name,
				int(cpu.Energy.Total()/1000), int(gpu.Energy.Total()/1000), int(sand.Energy.Total()/1000),
				metrics.Pct(1-sand.Energy.Total()/cpu.Energy.Total()),
				metrics.Pct(1-sand.Energy.Total()/gpu.Energy.Total()))
		}
		fmt.Println("paper: SAND cuts power 42-82% vs CPU pipeline and 15-38% vs GPU pipeline")
		return t.Render(os.Stdout)
	})

	register("fig16", "operation counts with materialization planning (SlowFast+MAE)", func() error {
		// The paper counts operations in ONE training epoch, so only
		// cross-task sharing contributes (chunk length 1).
		pc, err := trainsim.DerivePlanCosts([]gpusim.Workload{gpusim.SlowFast, gpusim.MAE}, simIters*4, 1, 1, simSeed)
		if err != nil {
			return err
		}
		t := metrics.NewTable("Figure 16: preprocessing operations per epoch, multi-task",
			"operation", "reduction with planning")
		t.AddRow("decode", metrics.Pct(pc.DecodeReduction))
		t.AddRow("random crop", metrics.Pct(pc.CropReduction))
		fmt.Println("paper: decode -50.3%, random crop -33.1%")
		return t.Render(os.Stdout)
	})

	register("fig17", "preprocessing time vs storage budget (object pruning)", func() error {
		// 1.5 TB and 3 TB budgets expressed as fractions of the
		// all-leaves footprint; "without pruning" caches naively-chosen
		// final batches only up to the budget.
		t := metrics.NewTable("Figure 17: avg preprocessing time per iteration vs storage (SlowFast+MAE)",
			"storage", "no-pruning iter prep", "pruned iter prep", "reduction")
		for _, b := range []struct {
			label string
			frac  float64
		}{{"3TB-like (50%)", 0.5}, {"1.5TB-like (25%)", 0.25}} {
			noPrune, pruned, err := pruningAblation(b.frac)
			if err != nil {
				return err
			}
			t.AddRow(b.label, fmt.Sprintf("%.2f", noPrune), fmt.Sprintf("%.2f", pruned), metrics.Pct(1-pruned/noPrune))
		}
		fmt.Println("paper: pruning cuts recompute 10% at 3TB and 25% at 1.5TB")
		return t.Render(os.Stdout)
	})

	register("fig18", "priority-based scheduling ablation (MAE)", func() error {
		w := gpusim.MAE
		sched, err := trainsim.Run(trainsim.Scenario{
			Workload: w, Pipeline: trainsim.SAND, Epochs: simEpochs, ItersPerEpoch: simIters,
			ChunkEpochs: simChunk, Scheduling: true, Seed: simSeed,
		})
		if err != nil {
			return err
		}
		nosched, err := trainsim.Run(trainsim.Scenario{
			Workload: w, Pipeline: trainsim.SAND, Epochs: simEpochs, ItersPerEpoch: simIters,
			ChunkEpochs: simChunk, Scheduling: false, Seed: simSeed,
		})
		if err != nil {
			return err
		}
		t := metrics.NewTable("Figure 18: average iteration time with and without scheduling (MAE)",
			"configuration", "avg iteration", "slowdown")
		t.AddRow("priority scheduling", metrics.Seconds(sched.AvgIterSec), "-")
		t.AddRow("no scheduling (FIFO per-video subtrees)", metrics.Seconds(nosched.AvgIterSec),
			metrics.Pct((nosched.AvgIterSec-sched.AvgIterSec)/sched.AvgIterSec))
		fmt.Println("paper: 42.6% slower without scheduling")
		return t.Render(os.Stdout)
	})

	register("fig19", "CDF of frame selection counts over 10 epochs", func() error {
		req := graph.SamplingReq{Task: "slowfast", FramesPerVideo: 32, FrameStride: 2}
		co, err := trainsim.FrameSelectionExperiment(true, 10, 100, 250, simChunk, req, simSeed)
		if err != nil {
			return err
		}
		un, err := trainsim.FrameSelectionExperiment(false, 10, 100, 250, simChunk, req, simSeed)
		if err != nil {
			return err
		}
		t := metrics.NewTable("Figure 19: fraction of selected frames chosen >= n times",
			"n", "with sand", "without sand")
		for _, n := range []int{1, 2, 4, 6, 8} {
			t.AddRow(n, metrics.Pct(co.FracAtLeast(n)), metrics.Pct(un.FracAtLeast(n)))
		}
		fmt.Printf("paper: >=4 selections covers 60.1%% with SAND vs 10.6%% without (ours: %s vs %s)\n",
			metrics.Pct(co.FracAtLeast(4)), metrics.Pct(un.FracAtLeast(4)))
		return t.Render(os.Stdout)
	})

	register("fig20", "loss curves with and without materialization planning", func() error {
		req := graph.SamplingReq{Task: "t", FramesPerVideo: 8, FrameStride: 4}
		coord, err := trainsim.ConvergenceExperiment(true, 25, 64, 300, simChunk, req, simSeed)
		if err != nil {
			return err
		}
		uncoord, err := trainsim.ConvergenceExperiment(false, 25, 64, 300, simChunk, req, simSeed)
		if err != nil {
			return err
		}
		cv := make([]float64, len(coord))
		uv := make([]float64, len(uncoord))
		for i := range coord {
			cv[i] = coord[i].Loss
			uv[i] = uncoord[i].Loss
		}
		fmt.Printf("with planning    %s  (%.3f -> %.3f)\n", metrics.Sparkline(cv), cv[0], cv[len(cv)-1])
		fmt.Printf("fresh randomness %s  (%.3f -> %.3f)\n", metrics.Sparkline(uv), uv[0], uv[len(uv)-1])
		fmt.Printf("mean |gap| = %.4f over a %.3f loss drop — the curves overlap (paper: curves overlap)\n",
			trainsim.CurveGap(coord, uncoord), cv[0]-cv[len(cv)-1])
		return nil
	})
}

// countDecodes plans `epochs` epochs for one video and counts decoded
// frames in the plan.
func countDecodes(w gpusim.Workload, epochs int, coordinate bool) (int, error) {
	task := trainsim.WorkloadTaskForTests(w, "t", 1)
	plan, err := graph.BuildChunkPlan(
		[]graph.TaskSpec{{Task: task}},
		[]graph.VideoMeta{{Name: "v", Frames: 300, W: 128, H: 72, C: 3, GOP: 30}},
		graph.PlanParams{Epochs: epochs, Coordinate: coordinate, Seed: 5},
	)
	if err != nil {
		return 0, err
	}
	return plan.OpCounts()["decode"], nil
}

// pruningAblation compares per-iteration recompute cost when caching
// naively (final batches only, truncated at the budget) vs with
// Algorithm 1 pruning, at the given budget fraction.
func pruningAblation(frac float64) (noPrune, pruned float64, err error) {
	mk := func() (*graph.ChunkPlan, error) {
		return graph.BuildChunkPlan(
			[]graph.TaskSpec{
				{Task: trainsim.WorkloadTaskForTests(gpusim.SlowFast, "slowfast", 4)},
				{Task: trainsim.WorkloadTaskForTests(gpusim.MAE, "mae", 4)},
			},
			metasForAblation(24),
			graph.PlanParams{Epochs: simChunk, Coordinate: true, Seed: 11},
		)
	}
	base, err := mk()
	if err != nil {
		return 0, 0, err
	}
	budget := int64(float64(base.TotalCachedBytes()) * frac)

	// Naive: keep leaves cached in plan order until the budget runs out;
	// everything else recomputes from the root.
	naivePlan, err := mk()
	if err != nil {
		return 0, 0, err
	}
	naiveTruncate(naivePlan, budget)
	noPrune = naivePlan.TotalRecomputeCost() + totalMaterialize(naivePlan)

	prunedPlan, err := mk()
	if err != nil {
		return 0, 0, err
	}
	if _, err := graph.PrunePlan(prunedPlan, budget); err != nil {
		return 0, 0, err
	}
	pruned = prunedPlan.TotalRecomputeCost() + totalMaterialize(prunedPlan)

	batches := float64(len(base.Samples))
	return noPrune / batches / 1e6, pruned / batches / 1e6, nil
}

func metasForAblation(n int) []graph.VideoMeta {
	metas := make([]graph.VideoMeta, n)
	for i := range metas {
		metas[i] = graph.VideoMeta{
			Name: fmt.Sprintf("v%03d", i), Frames: 300,
			W: 128, H: 72, C: 3, GOP: 30,
		}
	}
	return metas
}

func totalMaterialize(p *graph.ChunkPlan) float64 {
	var sum float64
	for _, g := range p.Graphs {
		sum += g.MaterializationCost()
	}
	return sum
}

// naiveTruncate keeps cached leaves (in deterministic order) until the
// budget is exhausted, un-caching the rest — the "without pruning"
// baseline of Figure 17.
func naiveTruncate(p *graph.ChunkPlan, budget int64) {
	var used int64
	for _, s := range p.Samples {
		for _, chainLeaves := range s.Leaves {
			for _, leaf := range chainLeaves {
				if !leaf.Cached {
					continue
				}
				if used+leaf.Size() <= budget {
					used += leaf.Size()
				} else {
					leaf.Cached = false
				}
			}
		}
	}
}

func meanDecodeRatio() float64 {
	var sum float64
	for _, w := range gpusim.Workloads {
		sum += gpusim.DecodeEnergyRatio(w)
	}
	return sum / float64(len(gpusim.Workloads))
}
