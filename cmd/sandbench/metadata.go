package main

import (
	"fmt"
	"os"
	"time"
	"unsafe"

	"sand/internal/gpusim"
	"sand/internal/graph"
	"sand/internal/metrics"
	"sand/internal/trainsim"
)

func init() {
	register("metadata", "§5.5 metadata overhead: concrete-graph size and planning latency", func() error {
		// The paper claims a concrete object dependency graph for a
		// typical 300-frame video has "only a few hundred nodes (tens to
		// hundreds of KB) and generates in milliseconds". Verify with the
		// real planner.
		task := trainsim.WorkloadTaskForTests(gpusim.SlowFast, "slowfast", 4)
		metas := []graph.VideoMeta{{Name: "v", Frames: 300, W: 1280, H: 720, C: 3, GOP: 30}}
		start := time.Now()
		plan, err := graph.BuildChunkPlan([]graph.TaskSpec{{Task: task}}, metas,
			graph.PlanParams{Epochs: 5, Coordinate: true, Seed: 7})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		g := plan.Graphs["v"]
		nodes := g.NodeCount()
		// Approximate in-memory footprint: node struct + children slice
		// headers + signature strings.
		var bytesEst int64
		var walk func(n *graph.Node)
		walk = func(n *graph.Node) {
			bytesEst += int64(unsafe.Sizeof(*n)) + int64(len(n.Sig)) + int64(cap(n.Children))*8
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(g.Root)
		t := metrics.NewTable("Metadata overhead for one 300-frame video, k=5 (paper §5.5)",
			"metric", "paper claim", "measured")
		t.AddRow("concrete graph nodes", "a few hundred", nodes)
		t.AddRow("graph memory", "tens to hundreds of KB", metrics.Bytes(float64(bytesEst)))
		t.AddRow("generation time", "milliseconds", fmt.Sprintf("%.2fms", float64(elapsed.Microseconds())/1000))
		t.AddRow("samples planned", "-", len(plan.Samples))
		return t.Render(os.Stdout)
	})
}
