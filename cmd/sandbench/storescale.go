package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"sand/internal/metrics"
	"sand/internal/storage"
)

// storescale measures the real object store (not the simulator) under
// parallel mixed Put/Get with eviction active, comparing the unsharded
// configuration against the sharded one selected by -store-shards. It is
// the CLI companion to BenchmarkStoreContention: same workload shape,
// table output instead of testing.B.

func init() {
	register("storescale", "storage: sharded vs unsharded store under parallel mixed Put/Get", func() error {
		shards := *storeShards
		if shards <= 1 {
			// The store's own default is GOMAXPROCS-derived, which is 1 on
			// a single-core box; pin a spread that shows the scaling story
			// regardless of core count.
			shards = 16
		}
		t := metrics.NewTable(
			fmt.Sprintf("Store contention: mixed Put/Get ns/op, 1 shard vs %d shards (eviction active)", shards),
			"goroutines", "1-shard ns/op", fmt.Sprintf("%d-shard ns/op", shards), "speedup")
		for _, g := range []int{1, 4, 16} {
			base, err := storeScaleRun(1, g)
			if err != nil {
				return err
			}
			sharded, err := storeScaleRun(shards, g)
			if err != nil {
				return err
			}
			t.AddRow(g, base, sharded, metrics.Ratio(float64(base)/float64(sharded)))
		}
		fmt.Println("speedup comes from per-shard locks and eviction passes over cached per-shard snapshots (N× smaller sorts)")
		return t.Render(os.Stdout)
	})
}

// storeScaleRun drives goroutines g over a keyspace large enough to keep
// the store above its eviction watermark and returns mean ns/op.
func storeScaleRun(shards, g int) (int64, error) {
	const (
		budget   = 1 << 20 // 1 MiB: ~2048 objects fit, so eviction stays hot
		objSize  = 512
		keySpace = 4096
		opsPerG  = 20000
	)
	s, err := storage.Open(storage.Options{MemBudget: budget, Shards: shards})
	if err != nil {
		return 0, err
	}
	payload := make([]byte, objSize)
	keys := make([]string, keySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("/storescale/%04d", i)
	}
	// Preload half the keyspace so Gets hit from the first op.
	for i := 0; i < keySpace/2; i++ {
		if err := s.Put(&storage.Object{Key: keys[i], Data: payload, Deadline: int64(i)}); err != nil {
			return 0, err
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint32(2463534242 + w*997)
			for i := 0; i < opsPerG; i++ {
				rng ^= rng << 13
				rng ^= rng >> 17
				rng ^= rng << 5
				k := keys[rng%keySpace]
				if rng&1 == 0 {
					s.Put(&storage.Object{Key: k, Data: payload, Deadline: int64(rng % 10000)})
				} else {
					s.Get(k)
				}
				s.MemPressure() // the scheduler samples this on every dequeue
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return elapsed.Nanoseconds() / int64(g*opsPerG), nil
}
