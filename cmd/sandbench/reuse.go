package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"time"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/metrics"
)

// batchOverlap gates the cross-sample arm: batches of single-chain
// samples whose crops overlap, measured with batch-scoped planning on
// and off. On by default so CI always covers the cross-sample path.
var batchOverlap = flag.Bool("batch-overlap", true, "include the cross-sample batch-overlap arm in the reuse experiment")

// reuse measures overlap-aware superset-crop reuse (DESIGN.md §9) on the
// real engine: four distinct 64x64 crop views of one resized 80x80 frame
// — overlapping but not identical, so the concrete-graph merge cannot
// unify them — consumed for three epochs with the rewrite on and off.
// The run fails if the two arms' batch bytes differ: the speedup column
// is only meaningful because the rewrite is exact. It is the CLI
// companion to BenchmarkOverlappingViews.

func init() {
	register("reuse", "core: superset-crop reuse over four overlapping views, on vs off (exact rewrite)", func() error {
		onNs, onStats, onDig, err := reuseRun(false)
		if err != nil {
			return err
		}
		offNs, _, offDig, err := reuseRun(true)
		if err != nil {
			return err
		}
		if onDig != offDig {
			return fmt.Errorf("reuse arms diverged: %s vs %s (rewrite must be exact)", onDig[:12], offDig[:12])
		}
		// Every view-frame needs the shared prefix; the off arm runs it
		// once per view, the reuse arm once per superset miss.
		views := onStats.SupersetHits + onStats.SupersetMisses
		t := metrics.NewTable(
			"Overlapping views: superset reuse on vs off (byte-identical output)",
			"arm", "ns/batch", "prefix runs", "views served")
		t.AddRow("reuse", onNs, onStats.SupersetMisses, views)
		t.AddRow("off", offNs, views, views)
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("prefix work %s lower with reuse; end-to-end ns/batch also pays batch encode, which both arms share.\n",
			metrics.Ratio(float64(views)/float64(onStats.SupersetMisses)))
		if *batchOverlap {
			// Cross-sample arm: four single-chain samples per batch — a
			// per-sample planner has nothing to group inside one chain, so
			// the whole difference is batch-scoped planning.
			bNs, bStats, bDig, err := batchOverlapRun(false)
			if err != nil {
				return err
			}
			sNs, _, sDig, err := batchOverlapRun(true)
			if err != nil {
				return err
			}
			if bDig != sDig {
				return fmt.Errorf("batch-overlap arms diverged: %s vs %s (batch scope must be exact)", bDig[:12], sDig[:12])
			}
			bt := metrics.NewTable(
				"Batch-overlap: cross-sample superset sharing, batch-scoped vs per-sample planning (byte-identical output)",
				"arm", "ns/batch", "xsample hits", "xsample groups")
			bt.AddRow("batch", bNs, bStats.XSampleHits, bStats.XSampleGroups)
			bt.AddRow("sample", sNs, 0, 0)
			if err := bt.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("batch scope served %d views through %d cross-sample groups (per-sample planning: zero); ns/batch is encode-dominated here — the isolated gate lives in BENCH_reuse.json.\n",
				bStats.XSampleHits, bStats.XSampleGroups)
		}
		fmt.Println("isolated materialization hot path: make bench-reuse (BENCH_reuse.json, gates >=1.5x / >=2x)")
		return nil
	})
}

// reuseRun consumes every batch of a three-epoch run and returns mean
// ns/batch, the reuse counters, and a digest of all output bytes.
func reuseRun(disable bool) (int64, core.ReuseStats, string, error) {
	ds, err := dataset.Generate("reusebench", dataset.VideoSpec{
		W: 96, H: 96, C: 3, Frames: 40, FPS: 30, GOP: 10,
	}, 8, 7)
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	task := &config.Task{
		Tag:         "reuse",
		Source:      config.SourceFile,
		DatasetPath: "/data/reusebench",
		Sampling:    config.Sampling{VideosPerBatch: 4, FramesPerVideo: 8, FrameStride: 2, SamplesPerVideo: 1},
		Stages: []config.Stage{
			{
				Name: "resize", Type: config.BranchSingle,
				Inputs: []string{"frame"}, Outputs: []string{"base"},
				Ops: []config.OpSpec{{Op: "resize", Params: map[string]any{"shape": []any{80, 80}}}},
			},
			{
				Name: "views", Type: config.BranchMulti,
				Inputs: []string{"base"}, Outputs: []string{"v0", "v1", "v2", "v3"},
				Branches: []config.SubBranch{
					{Ops: []config.OpSpec{{Op: "crop", Params: map[string]any{"shape": []any{64, 64}, "x": 0, "y": 0}}}},
					{Ops: []config.OpSpec{{Op: "crop", Params: map[string]any{"shape": []any{64, 64}, "x": 16, "y": 16}}}},
					{Ops: []config.OpSpec{{Op: "crop", Params: map[string]any{"shape": []any{64, 64}, "x": 8, "y": 0}}}},
					{Ops: []config.OpSpec{{Op: "crop", Params: map[string]any{"shape": []any{64, 64}, "x": 0, "y": 12}}}},
				},
			},
			{
				Name: "join", Type: config.BranchMerge,
				Inputs: []string{"v0", "v1", "v2", "v3"}, Outputs: []string{"merged"},
			},
		},
	}
	if err := task.Validate(); err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: 2,
		TotalEpochs: 3,
		MemBudget:   8 << 20,
		// StorageBudget 1 prunes all intermediate caching — the
		// memory-pressure regime where the store tier cannot hold per-view
		// leaves and the off arm pays the full prefix per view. This is
		// where the superset rewrite earns its keep; with a generous
		// budget both arms converge on store-tier hits.
		StorageBudget: 1,
		// Large enough for the whole decoded corpus (~9 MiB): decode
		// amplification would otherwise dominate both arms and bury the
		// augmentation cost this experiment compares.
		GOPCacheBudget: 32 << 20,
		Workers:        4,
		Coordinate:     true,
		Seed:           11,
		Reuse:          core.ReuseOptions{DisableSuperset: disable},
	})
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	defer svc.Close()
	loader, err := svc.NewLoader("reuse")
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	iters, err := svc.ItersPerEpoch("reuse")
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	h := sha256.New()
	batches := 0
	start := time.Now()
	for epoch := 0; epoch < 3; epoch++ {
		for it := 0; it < iters; it++ {
			batch, _, err := loader.Next(epoch, it)
			if err != nil {
				return 0, core.ReuseStats{}, "", err
			}
			for _, clip := range batch.Clips {
				for _, f := range clip.Frames {
					h.Write(f.Pix)
				}
			}
			batches++
		}
	}
	elapsed := time.Since(start)
	return elapsed.Nanoseconds() / int64(batches), svc.ReuseStats(), hex.EncodeToString(h.Sum(nil)), nil
}

// batchOverlapRun consumes every batch of a three-epoch run of the
// cross-sample workload: four single-chain samples per batch whose
// random 64x64 crops resolve inside a shared 72x72 window (the helper
// task widens the window and is never read; its tag sorts after the
// measured task's, which is where the chunk planner anchors the window
// geometry). Returns mean ns/batch, reuse counters, and an output
// digest.
func batchOverlapRun(disableBatchScope bool) (int64, core.ReuseStats, string, error) {
	ds, err := dataset.Generate("xsoverlap", dataset.VideoSpec{
		W: 96, H: 96, C: 3, Frames: 40, FPS: 30, GOP: 10,
	}, 6, 7)
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	measured := &config.Task{
		Tag:         "xs",
		Source:      config.SourceFile,
		DatasetPath: "/data/xsoverlap",
		Sampling:    config.Sampling{VideosPerBatch: 1, FramesPerVideo: 6, FrameStride: 2, SamplesPerVideo: 4},
		Stages: []config.Stage{
			{
				Name: "aug", Type: config.BranchSingle,
				Inputs: []string{"frame"}, Outputs: []string{"out"},
				Ops: []config.OpSpec{
					{Op: "resize", Params: map[string]any{"shape": []any{80, 80}}},
					{Op: "random_crop", Params: map[string]any{"shape": []any{64, 64}}},
				},
			},
		},
	}
	helper := &config.Task{
		Tag:         "zwin",
		Source:      config.SourceFile,
		DatasetPath: "/data/xsoverlap",
		Sampling:    config.Sampling{VideosPerBatch: 1, FramesPerVideo: 1, FrameStride: 1, SamplesPerVideo: 1},
		Stages: []config.Stage{
			{
				Name: "wide", Type: config.BranchSingle,
				Inputs: []string{"frame"}, Outputs: []string{"out"},
				Ops: []config.OpSpec{
					{Op: "resize", Params: map[string]any{"shape": []any{80, 80}}},
					{Op: "random_crop", Params: map[string]any{"shape": []any{72, 72}}},
				},
			},
		},
	}
	for _, t := range []*config.Task{measured, helper} {
		if err := t.Validate(); err != nil {
			return 0, core.ReuseStats{}, "", err
		}
	}
	svc, err := core.New(core.Options{
		Tasks:          []*config.Task{measured, helper},
		Dataset:        ds,
		ChunkEpochs:    2,
		TotalEpochs:    3,
		MemBudget:      8 << 20,
		StorageBudget:  1,        // prune store caching (see reuseRun)
		GOPCacheBudget: 32 << 20, // hold the decoded corpus
		Workers:        4,
		Coordinate:     true,
		Seed:           11,
		Reuse:          core.ReuseOptions{DisableBatchScope: disableBatchScope},
	})
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	defer svc.Close()
	loader, err := svc.NewLoader("xs")
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	iters, err := svc.ItersPerEpoch("xs")
	if err != nil {
		return 0, core.ReuseStats{}, "", err
	}
	h := sha256.New()
	batches := 0
	start := time.Now()
	for epoch := 0; epoch < 3; epoch++ {
		for it := 0; it < iters; it++ {
			batch, _, err := loader.Next(epoch, it)
			if err != nil {
				return 0, core.ReuseStats{}, "", err
			}
			for _, clip := range batch.Clips {
				for _, f := range clip.Frames {
					h.Write(f.Pix)
				}
			}
			batches++
		}
	}
	elapsed := time.Since(start)
	return elapsed.Nanoseconds() / int64(batches), svc.ReuseStats(), hex.EncodeToString(h.Sum(nil)), nil
}
