// Command sandserve plans a SAND configuration and serves its view
// filesystem over the network: the step from library to system. Any
// machine that can reach the socket mounts the engine's views through
// viewserver.Client and trains with the same four POSIX calls as a local
// consumer.
//
// Usage:
//
//	sandserve                               # synthetic dataset on 127.0.0.1:7468
//	sandserve -listen 0.0.0.0:7468          # serve a real port
//	sandserve -unix /tmp/sand.sock          # additionally serve a unix socket
//	sandserve -data /tmp/mini -task t.yaml  # dataset from sandgen + task config
//	sandserve -metrics 127.0.0.1:9090       # /metrics + /debug/trace endpoints
//	sandserve -metrics :9090 -trace         # capture events from startup
//
// Fleet mode: -registry announces the node to a fleet control plane (see
// internal/fleet and cmd/sandctl) and keeps it healthy with heartbeats;
// the node's /metrics.json is scraped by the fleet collector. On SIGTERM
// the node drains first — it asks the registry to stop routing new opens
// to it, then waits for its descriptors and sessions to finish (bounded
// by -drain-timeout) before exiting. SIGINT skips the drain.
//
//	sandserve -registry 127.0.0.1:7470 -node gpu3 -capacity 2
//
// On exit it prints the dataplane counters (requests by op, bytes
// served, sessions, read-ahead hit rate).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sand/internal/config"
	"sand/internal/core"
	"sand/internal/dataset"
	"sand/internal/fleet"
	"sand/internal/obs"
	"sand/internal/viewserver"
)

const defaultTask = `
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 2
    frames_per_video: 8
    frame_stride: 2
    samples_per_video: 1
  augmentation:
  - name: "resize"
    branch_type: "single"
    inputs: ["frame"]
    outputs: ["a0"]
    config:
    - resize:
        shape: [64, 64]
`

func main() {
	listen := flag.String("listen", "127.0.0.1:7468", "TCP listen address ('' disables)")
	unixSock := flag.String("unix", "", "unix socket path to also serve ('' disables)")
	dataDir := flag.String("data", "", "dataset directory (default: generate synthetic)")
	taskFile := flag.String("task", "", "task config YAML file (default: built-in)")
	epochs := flag.Int("epochs", 8, "total training epochs to plan")
	chunk := flag.Int("chunk", 2, "chunk size k (epochs planned together)")
	workers := flag.Int("workers", 4, "preprocessing worker pool size")
	readahead := flag.Int("readahead", viewserver.DefaultReadAhead, "batch views to prefetch ahead per sequence (0 disables)")
	adaptiveRA := flag.Bool("adaptive-readahead", false, "let each session's prefetch depth track its consumption rate (see -readahead-max)")
	readaheadMax := flag.Int("readahead-max", viewserver.DefaultReadAheadMax, "adaptive read-ahead depth ceiling")
	demandSLO := flag.Duration("demand-slo", 0, "demand-path queue-wait p99 SLO; above it premat admission closes (0 disables)")
	flightDir := flag.String("flight-dir", "", "directory for flight-recorder trace dumps on SLO breaches ('' disables)")
	inflight := flag.Int("inflight", 32, "max in-flight requests per client session")
	metricsAddr := flag.String("metrics", "", "HTTP address for /metrics and /debug/trace ('' disables; fleet mode auto-binds 127.0.0.1:0)")
	trace := flag.Bool("trace", false, "enable the event tracer at startup")
	registryAddr := flag.String("registry", "", "fleet registry address to announce to ('' = standalone)")
	nodeName := flag.String("node", "", "fleet node name (default: the serving address)")
	advertise := flag.String("advertise", "", "address other machines dial (default: the bound -listen address)")
	capacity := flag.Int("capacity", 1, "relative routing weight announced to the fleet")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for sessions to finish when draining on SIGTERM")
	flag.Parse()

	if *listen == "" && *unixSock == "" {
		log.Fatal("sandserve: nothing to serve: both -listen and -unix are empty")
	}
	if *registryAddr != "" && *listen == "" {
		log.Fatal("sandserve: fleet mode needs a TCP -listen address to announce")
	}

	var ds *dataset.Dataset
	var err error
	if *dataDir != "" {
		ds, err = dataset.LoadDir(*dataDir)
	} else {
		ds, err = dataset.Kinetics400.Miniature(8, 96, 96, 60, 3)
	}
	if err != nil {
		log.Fatal(err)
	}
	var task *config.Task
	if *taskFile != "" {
		task, err = config.LoadTaskFile(*taskFile)
	} else {
		task, err = config.LoadTask(defaultTask)
	}
	if err != nil {
		log.Fatal(err)
	}

	reg := obs.New()
	if *trace {
		reg.Trace().Enable()
	}

	svc, err := core.New(core.Options{
		Tasks:       []*config.Task{task},
		Dataset:     ds,
		ChunkEpochs: *chunk,
		TotalEpochs: *epochs,
		Workers:     *workers,
		Coordinate:  true,
		Seed:        1,
		Obs:         reg,
		DemandSLO:   *demandSLO,
		FlightDir:   *flightDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	srv := viewserver.New(svc.FS(), viewserver.Options{
		ReadAhead:         *readahead,
		AdaptiveReadAhead: *adaptiveRA,
		ReadAheadMax:      *readaheadMax,
		MaxInflight:       *inflight,
		Obs:               reg,
	})
	obsAddr := *metricsAddr
	if obsAddr == "" && *registryAddr != "" {
		obsAddr = "127.0.0.1:0" // the fleet collector scrapes /metrics.json
	}
	var metricsBound string
	if obsAddr != "" {
		addr, stop, err := reg.StartServer(obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		metricsBound = addr.String()
		fmt.Printf("sandserve: observability on http://%s/metrics (traces at /debug/trace)\n", addr)
	}
	var tcpAddr string
	if *listen != "" {
		addr, err := srv.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		tcpAddr = addr.String()
		fmt.Printf("sandserve: serving %d videos, task %q, %d epochs on tcp %s\n",
			len(ds.Videos), task.Tag, *epochs, addr)
	}
	if *unixSock != "" {
		addr, err := srv.Listen("unix", *unixSock)
		if err != nil {
			log.Fatal(err)
		}
		defer os.Remove(*unixSock)
		fmt.Printf("sandserve: also serving unix %s\n", addr)
	}
	fmt.Printf("sandserve: views follow the Table 1 scheme, e.g. /%s/0/0/view\n", task.Tag)

	// Fleet membership: announce, heartbeat, drain on SIGTERM.
	var fleetCli *fleet.RegistryClient
	var hb *fleet.Heartbeater
	name := *nodeName
	if *registryAddr != "" {
		if name == "" {
			name = tcpAddr
		}
		adv := *advertise
		if adv == "" {
			adv = tcpAddr
		}
		fleetCli = fleet.NewRegistryClient(*registryAddr)
		hb, err = fleet.StartHeartbeater(fleetCli, fleet.NodeInfo{
			Name:        name,
			Addr:        adv,
			MetricsAddr: metricsBound,
			Fingerprint: svc.Fingerprint(),
			Capacity:    *capacity,
		})
		if err != nil {
			log.Fatalf("sandserve: announce to %s: %v", *registryAddr, err)
		}
		fmt.Printf("sandserve: announced as %q (fingerprint %.12s…) to registry %s\n",
			name, svc.Fingerprint(), *registryAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig

	if fleetCli != nil && got == syscall.SIGTERM {
		// Drain: stop receiving new opens, let existing sessions finish.
		fmt.Printf("sandserve: SIGTERM — draining %q (timeout %s)\n", name, *drainTimeout)
		if err := fleetCli.Drain(name); err != nil {
			fmt.Printf("sandserve: drain: %v\n", err)
		}
		deadline := time.Now().Add(*drainTimeout)
		for time.Now().Before(deadline) {
			st := srv.Stats()
			if st.OpenFDs == 0 && st.OpenSessions == 0 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	if hb != nil {
		hb.Stop()
	}
	if fleetCli != nil {
		if err := fleetCli.Forget(name); err != nil {
			fmt.Printf("sandserve: forget: %v\n", err)
		}
	}

	fmt.Println()
	srv.StatsTable().Render(os.Stdout)
	reg.WriteText(os.Stdout)
	srv.Close()
}
