// Command sandctl is the fleet operator's console. It speaks the
// registry's HTTP/JSON protocol (see internal/fleet) and covers the
// day-2 loop: list nodes and their health, watch the fleet summary,
// drain a node before maintenance, forget one that is gone for good,
// and dump the merged cluster /metrics.
//
// Usage:
//
//	sandctl serve -listen 127.0.0.1:7470            # host a registry
//	sandctl -registry 127.0.0.1:7470 nodes          # table of nodes + state
//	sandctl -registry 127.0.0.1:7470 status         # fleet summary (JSON)
//	sandctl -registry 127.0.0.1:7470 drain gpu3     # stop new opens to gpu3
//	sandctl -registry 127.0.0.1:7470 forget gpu3    # declare gpu3 dead now
//	sandctl -registry 127.0.0.1:7470 metrics        # merged Prometheus text
//	sandctl -registry 127.0.0.1:7470 nodes -history # include transitions
//
// Exit status is non-zero when the registry is unreachable or rejects
// the request (e.g. draining an unknown node).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"sand/internal/fleet"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sandctl -registry host:port <command> [args]

commands:
  serve [-listen addr] [-suspect-after d] [-dead-after d]
                     host a fleet registry + metrics collector
  nodes [-history]   list nodes, health state, weight, last heartbeat
  status             fleet summary as JSON
  drain <node>       stop routing new opens to the node
  forget <node>      declare the node dead immediately
  metrics            fetch the merged fleet /metrics exposition
`)
	os.Exit(2)
}

func main() {
	registry := flag.String("registry", "127.0.0.1:7470", "fleet registry address")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cli := fleet.NewRegistryClient(*registry)

	var err error
	switch cmd, rest := flag.Arg(0), flag.Args()[1:]; cmd {
	case "serve":
		err = cmdServe(rest)
	case "nodes":
		err = cmdNodes(cli, rest)
	case "status":
		err = cmdStatus(cli)
	case "drain":
		if len(rest) != 1 {
			usage()
		}
		if err = cli.Drain(rest[0]); err == nil {
			fmt.Printf("draining %q: existing reads finish, no new opens\n", rest[0])
		}
	case "forget":
		if len(rest) != 1 {
			usage()
		}
		if err = cli.Forget(rest[0]); err == nil {
			fmt.Printf("forgot %q\n", rest[0])
		}
	case "metrics":
		err = cmdMetrics(*registry)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sandctl: %v\n", err)
		os.Exit(1)
	}
}

// cmdServe hosts the registry itself: the one long-running sandctl
// mode. Nodes announce here, the collector scrapes them, and every
// other sandctl command (and fleet.Router) points at this address.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7470", "registry listen address")
	suspect := fs.Duration("suspect-after", 2*time.Second, "heartbeat silence before a node turns suspect")
	dead := fs.Duration("dead-after", 6*time.Second, "heartbeat silence before a node is declared dead")
	_ = fs.Parse(args)

	registry := fleet.NewRegistry(fleet.RegistryOptions{
		SuspectAfter: *suspect,
		DeadAfter:    *dead,
	})
	defer registry.Close()
	registry.AttachCollector(fleet.NewCollector(fleet.CollectorOptions{
		Lister: fleet.LocalAnnouncer{R: registry},
	}))
	addr, stop, err := registry.Start(*listen)
	if err != nil {
		return err
	}
	defer stop()
	fmt.Printf("sandctl: fleet registry on http://%s (suspect after %s, dead after %s)\n",
		addr, *suspect, *dead)
	select {} // serve until killed
}

func cmdNodes(cli *fleet.RegistryClient, args []string) error {
	fs := flag.NewFlagSet("nodes", flag.ExitOnError)
	history := fs.Bool("history", false, "show each node's state transitions")
	_ = fs.Parse(args)
	nodes, err := cli.Nodes()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tSTATE\tADDR\tWEIGHT\tGEN\tLAST BEAT")
	for _, n := range nodes {
		beat := "never"
		if !n.LastBeat.IsZero() {
			beat = time.Since(n.LastBeat).Round(time.Millisecond).String() + " ago"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\n",
			n.Info.Name, n.State, n.Info.Addr, n.Info.Capacity, n.Gen, beat)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if *history {
		for _, n := range nodes {
			if len(n.History) == 0 {
				continue
			}
			fmt.Printf("%s:\n", n.Info.Name)
			for _, tr := range n.History {
				fmt.Printf("  %s  %s -> %s\n",
					tr.At.Format("15:04:05.000"), tr.FromName, tr.ToName)
			}
		}
	}
	return nil
}

func cmdStatus(cli *fleet.RegistryClient) error {
	st, err := cli.Status()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

func cmdMetrics(registry string) error {
	base := registry
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("/metrics: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
